//! Canonical (numbering-insensitive) cone extraction for content
//! addressing.
//!
//! The proof cache keys every verdict by the *structure* of the cones
//! involved, not by their [`NodeId`]s: two networks that build the
//! same logic in a different node order — or the same network re-read
//! from disk — must hash to the same key. This module produces that
//! canonical form: a [`CanonicalCone`] lists the transitive fanin
//! cone of a root set in a traversal order fixed purely by the
//! structure (iterative DFS from the roots, fanins in fanin order,
//! each node emitted after its fanins), with every [`NodeId`]
//! replaced by a position in that order and every PI replaced by its
//! *support rank* — the order in which the traversal first reaches it.
//!
//! Renumbering the nodes of a network, interleaving unrelated logic,
//! or renaming the PIs all leave the canonical form byte-identical;
//! changing a truth table, a fanin edge, or the root list changes it.

use crate::id::NodeId;
use crate::network::{LutNetwork, NodeKind};

/// One node of a canonical cone. Fanin references are indices into
/// [`CanonicalCone::nodes`]; post-order construction guarantees they
/// point at earlier entries, so a single forward pass can fold the
/// cone into a digest.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum CanonicalNode {
    /// A primary input, identified by the order in which the
    /// structural traversal first reached it (its support rank) —
    /// never by its PI index or name.
    Pi {
        /// 0-based first-visit rank within this cone's support.
        rank: usize,
    },
    /// A LUT: canonical fanin positions plus the raw truth table.
    Lut {
        /// Positions of the fanins in [`CanonicalCone::nodes`],
        /// in fanin order (fanin order is functional — permuting it
        /// permutes the truth table — so it is part of the structure).
        fanins: Vec<usize>,
        /// The truth table bits, LSB-first over the fanin order.
        tt: u64,
    },
}

/// The canonical form of the transitive fanin cone of an ordered root
/// list — the unit of content addressing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CanonicalCone {
    /// Cone nodes in canonical order (every fanin precedes its user).
    pub nodes: Vec<CanonicalNode>,
    /// Positions of the requested roots inside `nodes`, in the order
    /// they were given. The root order is part of the identity:
    /// `canonical_cone(net, &[a, b])` and `canonical_cone(net, &[b, a])`
    /// differ unless the cones coincide.
    pub roots: Vec<usize>,
    /// The cone's support in rank order: `support[r]` is the PI whose
    /// canonical identity is rank `r`. This is the bridge back into
    /// the concrete network — cached counterexamples are stored
    /// support-ordered and widened through this list at replay time.
    pub support: Vec<NodeId>,
}

impl CanonicalCone {
    /// Number of nodes in the cone.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True for the empty cone (only possible with no roots).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// Extracts the canonical form of the union of the fanin cones of
/// `roots` (each root included).
///
/// The traversal is an iterative DFS from each root in turn, pushing
/// fanins in fanin order and emitting every node after all its fanins
/// (post-order). The emission order — and hence every index in the
/// result — depends only on the cone's structure and the root order,
/// never on the [`NodeId`] numbering of the host network.
pub fn canonical_cone(net: &LutNetwork, roots: &[NodeId]) -> CanonicalCone {
    // usize::MAX = unvisited; otherwise the node's canonical position.
    let mut pos = vec![usize::MAX; net.len()];
    let mut nodes = Vec::new();
    let mut support = Vec::new();
    // DFS stack of (node, fanins already expanded?).
    let mut stack: Vec<(NodeId, bool)> = Vec::new();
    for &root in roots {
        stack.push((root, false));
        while let Some((n, expanded)) = stack.pop() {
            if pos[n.index()] != usize::MAX {
                continue;
            }
            if expanded {
                pos[n.index()] = nodes.len();
                let canonical = match net.kind(n) {
                    NodeKind::Pi { .. } => {
                        let rank = support.len();
                        support.push(n);
                        CanonicalNode::Pi { rank }
                    }
                    NodeKind::Lut { fanins, tt } => CanonicalNode::Lut {
                        fanins: fanins.iter().map(|f| pos[f.index()]).collect(),
                        tt: tt.bits(),
                    },
                };
                nodes.push(canonical);
            } else {
                stack.push((n, true));
                // Reversed so the first fanin is expanded (and thus
                // emitted) first.
                for &f in net.fanins(n).iter().rev() {
                    if pos[f.index()] == usize::MAX {
                        stack.push((f, false));
                    }
                }
            }
        }
    }
    CanonicalCone {
        nodes,
        roots: roots.iter().map(|r| pos[r.index()]).collect(),
        support,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truth::TruthTable;

    /// f = (a & b) ^ c, plus an unrelated distractor gate.
    fn build(interleave: bool) -> (LutNetwork, NodeId) {
        let mut net = LutNetwork::new();
        let a = net.add_pi("a");
        let b = net.add_pi("b");
        let c = net.add_pi("c");
        if interleave {
            // Unrelated logic allocated first shifts every NodeId.
            let d = net.add_pi("d");
            let junk = net.add_lut(vec![c, d], TruthTable::or2()).unwrap();
            net.add_po(junk, "junk");
        }
        let and = net.add_lut(vec![a, b], TruthTable::and2()).unwrap();
        let xor = net.add_lut(vec![and, c], TruthTable::xor2()).unwrap();
        net.add_po(xor, "f");
        (net, xor)
    }

    #[test]
    fn fanins_precede_users_and_roots_resolve() {
        let (net, root) = build(false);
        let cone = canonical_cone(&net, &[root]);
        assert_eq!(cone.roots, vec![cone.len() - 1]);
        for (i, n) in cone.nodes.iter().enumerate() {
            if let CanonicalNode::Lut { fanins, .. } = n {
                assert!(fanins.iter().all(|&f| f < i), "node {i} fanins {fanins:?}");
            }
        }
        assert_eq!(cone.support.len(), 3);
    }

    #[test]
    fn insensitive_to_node_renumbering() {
        let (plain, r1) = build(false);
        let (shifted, r2) = build(true);
        assert_ne!(r1, r2, "the distractor must shift the ids");
        assert_eq!(
            canonical_cone(&plain, &[r1]).nodes,
            canonical_cone(&shifted, &[r2]).nodes
        );
    }

    #[test]
    fn sensitive_to_function_changes() {
        let (net, root) = build(false);
        let mut other = LutNetwork::new();
        let a = other.add_pi("a");
        let b = other.add_pi("b");
        let c = other.add_pi("c");
        let or = other.add_lut(vec![a, b], TruthTable::or2()).unwrap();
        let xor = other.add_lut(vec![or, c], TruthTable::xor2()).unwrap();
        other.add_po(xor, "f");
        assert_ne!(
            canonical_cone(&net, &[root]).nodes,
            canonical_cone(&other, &[xor]).nodes
        );
    }

    #[test]
    fn root_order_is_part_of_the_identity() {
        let mut net = LutNetwork::new();
        let a = net.add_pi("a");
        let b = net.add_pi("b");
        let x = net.add_lut(vec![a, b], TruthTable::and2()).unwrap();
        let y = net.add_lut(vec![a, b], TruthTable::or2()).unwrap();
        net.add_po(x, "x");
        net.add_po(y, "y");
        let xy = canonical_cone(&net, &[x, y]);
        let yx = canonical_cone(&net, &[y, x]);
        assert_ne!(xy, yx);
        // Same node set either way, just a different canonical order.
        assert_eq!(xy.len(), yx.len());
    }

    #[test]
    fn support_ranks_follow_first_visit() {
        let mut net = LutNetwork::new();
        let a = net.add_pi("a");
        let b = net.add_pi("b");
        // Gate visits b before a: support order must be [b, a].
        let g = net.add_lut(vec![b, a], TruthTable::and2()).unwrap();
        net.add_po(g, "g");
        let cone = canonical_cone(&net, &[g]);
        assert_eq!(cone.support, vec![b, a]);
        assert_eq!(cone.nodes[0], CanonicalNode::Pi { rank: 0 });
        assert_eq!(cone.nodes[1], CanonicalNode::Pi { rank: 1 });
    }

    #[test]
    fn empty_roots_give_empty_cone() {
        let (net, _) = build(false);
        let cone = canonical_cone(&net, &[]);
        assert!(cone.is_empty());
        assert!(cone.roots.is_empty());
        assert!(cone.support.is_empty());
    }
}
