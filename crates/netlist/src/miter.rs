//! Combining two networks for equivalence checking.
//!
//! CEC compares two implementations of the same specification. The
//! sweeping flow works on one *combined* network: the PIs are shared
//! and both node sets live in a single DAG, so equivalence classes can
//! span the two designs. The classic *miter* adds XOR disequality
//! outputs on matched PO pairs.

use crate::error::NetlistError;
use crate::id::NodeId;
use crate::network::{LutNetwork, NodeKind};
use crate::truth::TruthTable;

/// The result of [`combine`]: the shared-PI union network plus node
/// maps from each source network into it.
#[derive(Clone, Debug)]
pub struct Combined {
    /// The combined network (shared PIs, both designs' LUTs, and the
    /// PO lists of both concatenated: first all of `a`'s, then `b`'s).
    pub network: LutNetwork,
    /// `map_a[i]` is the combined-network id of node `i` of design A.
    pub map_a: Vec<NodeId>,
    /// `map_b[i]` is the combined-network id of node `i` of design B.
    pub map_b: Vec<NodeId>,
}

/// Places two networks with identical PI counts into one network with
/// shared PIs.
///
/// PO order is preserved: the combined network's first
/// `a.num_pos()` outputs belong to design A.
///
/// # Example
///
/// ```
/// use simgen_netlist::{LutNetwork, TruthTable, miter::combine};
///
/// # fn mk() -> LutNetwork {
/// #   let mut n = LutNetwork::new();
/// #   let a = n.add_pi("a");
/// #   let b = n.add_pi("b");
/// #   let f = n.add_lut(vec![a, b], TruthTable::and2()).unwrap();
/// #   n.add_po(f, "f");
/// #   n
/// # }
/// let left = mk();
/// let right = mk();
/// let combined = combine(&left, &right)?;
/// assert_eq!(combined.network.num_pis(), 2);          // shared
/// assert_eq!(combined.network.num_luts(), 2);         // both designs
/// # Ok::<(), simgen_netlist::NetlistError>(())
/// ```
///
/// # Errors
///
/// Returns [`NetlistError::Invalid`] if the PI counts differ.
pub fn combine(a: &LutNetwork, b: &LutNetwork) -> Result<Combined, NetlistError> {
    if a.num_pis() != b.num_pis() {
        return Err(NetlistError::Invalid(format!(
            "pi count mismatch: {} vs {}",
            a.num_pis(),
            b.num_pis()
        )));
    }
    let mut net = LutNetwork::with_name(format!("{}_vs_{}", a.name(), b.name()));
    let shared_pis: Vec<NodeId> = a
        .pis()
        .iter()
        .map(|&pi| net.add_pi(a.node_name(pi).unwrap_or("pi").to_string()))
        .collect();
    let map_a = copy_into(a, &mut net, &shared_pis);
    let map_b = copy_into(b, &mut net, &shared_pis);
    for po in a.pos() {
        net.add_po(map_a[po.node.index()], format!("a_{}", po.name));
    }
    for po in b.pos() {
        net.add_po(map_b[po.node.index()], format!("b_{}", po.name));
    }
    Ok(Combined {
        network: net,
        map_a,
        map_b,
    })
}

fn copy_into(src: &LutNetwork, dst: &mut LutNetwork, pis: &[NodeId]) -> Vec<NodeId> {
    let mut map: Vec<NodeId> = Vec::with_capacity(src.len());
    for id in src.node_ids() {
        let new_id = match src.kind(id) {
            NodeKind::Pi { index } => pis[*index],
            NodeKind::Lut { fanins, tt } => {
                let new_fanins: Vec<NodeId> = fanins.iter().map(|f| map[f.index()]).collect();
                dst.add_lut(new_fanins, *tt)
                    .expect("copying preserves arity and order")
            }
        };
        map.push(new_id);
    }
    map
}

/// Builds a single-output miter: the OR of XORs over matched PO pairs.
/// The output is 1 exactly on input vectors witnessing inequivalence.
///
/// # Errors
///
/// Returns [`NetlistError::Invalid`] if the PI or PO counts differ.
pub fn miter(a: &LutNetwork, b: &LutNetwork) -> Result<LutNetwork, NetlistError> {
    if a.num_pos() != b.num_pos() {
        return Err(NetlistError::Invalid(format!(
            "po count mismatch: {} vs {}",
            a.num_pos(),
            b.num_pos()
        )));
    }
    let combined = combine(a, b)?;
    let mut net = combined.network;
    let pairs: Vec<(NodeId, NodeId)> = a
        .pos()
        .iter()
        .zip(b.pos())
        .map(|(pa, pb)| {
            (
                combined.map_a[pa.node.index()],
                combined.map_b[pb.node.index()],
            )
        })
        .collect();
    // Drop the individual POs: the miter has a single output.
    net.clear_pos();
    net.set_name(format!("miter_{}", net.name()));
    let mut disputes: Vec<NodeId> = Vec::new();
    for (na, nb) in pairs {
        let x = net
            .add_lut(vec![na, nb], TruthTable::xor2())
            .expect("xor over existing nodes");
        disputes.push(x);
    }
    // Balanced OR tree over the dispute bits.
    let mut layer = disputes;
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for pair in layer.chunks(2) {
            if pair.len() == 2 {
                next.push(
                    net.add_lut(vec![pair[0], pair[1]], TruthTable::or2())
                        .expect("or over existing nodes"),
                );
            } else {
                next.push(pair[0]);
            }
        }
        layer = next;
    }
    let out = match layer.first() {
        Some(&n) => n,
        None => net.add_const(false), // no POs: vacuously equivalent
    };
    net.add_po(out, "miter");
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// f = a & b built two structurally different ways.
    fn and_pair() -> (LutNetwork, LutNetwork) {
        let mut n1 = LutNetwork::with_name("direct");
        let a = n1.add_pi("a");
        let b = n1.add_pi("b");
        let f = n1.add_lut(vec![a, b], TruthTable::and2()).unwrap();
        n1.add_po(f, "f");

        // De Morgan variant: !(!a | !b)
        let mut n2 = LutNetwork::with_name("demorgan");
        let a = n2.add_pi("a");
        let b = n2.add_pi("b");
        let na = n2.add_lut(vec![a], TruthTable::not1()).unwrap();
        let nb = n2.add_lut(vec![b], TruthTable::not1()).unwrap();
        let or = n2.add_lut(vec![na, nb], TruthTable::or2()).unwrap();
        let f = n2.add_lut(vec![or], TruthTable::not1()).unwrap();
        n2.add_po(f, "f");
        (n1, n2)
    }

    #[test]
    fn combine_shares_pis() {
        let (n1, n2) = and_pair();
        let c = combine(&n1, &n2).unwrap();
        assert_eq!(c.network.num_pis(), 2);
        assert_eq!(c.network.num_luts(), 1 + 4);
        assert_eq!(c.network.num_pos(), 2);
        // Both PO drivers compute the same function.
        for m in 0..4u32 {
            let ins: Vec<bool> = (0..2).map(|i| (m >> i) & 1 == 1).collect();
            let pos = c.network.eval_pos(&ins);
            assert_eq!(pos[0], pos[1]);
        }
    }

    #[test]
    fn miter_of_equivalent_designs_is_const0() {
        let (n1, n2) = and_pair();
        let m = miter(&n1, &n2).unwrap();
        assert_eq!(m.num_pos(), 1);
        for mm in 0..4u32 {
            let ins: Vec<bool> = (0..2).map(|i| (mm >> i) & 1 == 1).collect();
            assert_eq!(m.eval_pos(&ins), vec![false]);
        }
    }

    #[test]
    fn miter_detects_inequivalence() {
        let (n1, _) = and_pair();
        // A second design computing OR instead of AND.
        let mut broken = LutNetwork::with_name("or_design");
        let a = broken.add_pi("a");
        let b = broken.add_pi("b");
        let f = broken.add_lut(vec![a, b], TruthTable::or2()).unwrap();
        broken.add_po(f, "f");
        let m = miter(&n1, &broken).unwrap();
        // Differs exactly on the two single-1 inputs.
        assert_eq!(m.eval_pos(&[false, false]), vec![false]);
        assert_eq!(m.eval_pos(&[true, false]), vec![true]);
        assert_eq!(m.eval_pos(&[false, true]), vec![true]);
        assert_eq!(m.eval_pos(&[true, true]), vec![false]);
    }

    #[test]
    fn pi_mismatch_rejected() {
        let (n1, _) = and_pair();
        let mut n3 = LutNetwork::new();
        n3.add_pi("only");
        let one = n3.add_lut(vec![], TruthTable::const1(0)).unwrap();
        n3.add_po(one, "f");
        assert!(combine(&n1, &n3).is_err());
        assert!(miter(&n1, &n3).is_err());
    }

    #[test]
    fn multi_output_miter() {
        let mut n1 = LutNetwork::new();
        let a = n1.add_pi("a");
        let b = n1.add_pi("b");
        let x = n1.add_lut(vec![a, b], TruthTable::xor2()).unwrap();
        let y = n1.add_lut(vec![a, b], TruthTable::and2()).unwrap();
        n1.add_po(x, "s");
        n1.add_po(y, "c");
        let n2 = n1.clone();
        let m = miter(&n1, &n2).unwrap();
        for mm in 0..4u32 {
            let ins: Vec<bool> = (0..2).map(|i| (mm >> i) & 1 == 1).collect();
            assert_eq!(m.eval_pos(&ins), vec![false]);
        }
    }
}
