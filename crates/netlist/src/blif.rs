//! BLIF (Berkeley Logic Interchange Format) I/O for LUT networks.
//!
//! BLIF is how LUT-mapped circuits are conventionally exchanged (the
//! paper's flow hands ABC's `if -K 6` output to the sweeping tool).
//! The writer emits one `.names` block per LUT using an on-set cube
//! cover; the reader accepts `.names` blocks in any order and
//! topologically sorts them.

use std::collections::HashMap;
use std::io::{Read, Write};

use crate::error::NetlistError;
use crate::id::NodeId;
use crate::network::{LutNetwork, NodeKind};
use crate::truth::{Cube, TruthTable};

/// Writes a LUT network as BLIF.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write<W: Write>(net: &LutNetwork, mut w: W) -> std::io::Result<()> {
    let model = if net.name().is_empty() {
        "top"
    } else {
        net.name()
    };
    writeln!(w, ".model {model}")?;
    let sig = |id: NodeId| -> String {
        match net.node_name(id) {
            Some(n) => n.to_string(),
            None => format!("n{}", id.index()),
        }
    };
    write!(w, ".inputs")?;
    for &pi in net.pis() {
        write!(w, " {}", sig(pi))?;
    }
    writeln!(w)?;
    write!(w, ".outputs")?;
    for po in net.pos() {
        write!(w, " {}", po.name)?;
    }
    writeln!(w)?;
    for id in net.node_ids() {
        if let NodeKind::Lut { fanins, tt } = net.kind(id) {
            write!(w, ".names")?;
            for &f in fanins {
                write!(w, " {}", sig(f))?;
            }
            writeln!(w, " {}", sig(id))?;
            // The on-set cover handles constants too: const-1 yields
            // one all-dash cube, const-0 an empty block.
            for cube in tt.onset_cover() {
                for i in 0..tt.arity() {
                    match cube.input(i) {
                        Some(true) => write!(w, "1")?,
                        Some(false) => write!(w, "0")?,
                        None => write!(w, "-")?,
                    }
                }
                writeln!(w, " 1")?;
            }
        }
    }
    // Buffers from driver signals to output names where they differ.
    for po in net.pos() {
        let driver = sig(po.node);
        if driver != po.name {
            writeln!(w, ".names {driver} {}", po.name)?;
            writeln!(w, "1 1")?;
        }
    }
    writeln!(w, ".end")?;
    Ok(())
}

struct NamesBlock {
    inputs: Vec<String>,
    output: String,
    cubes: Vec<(Cube, bool)>,
    line: usize,
}

/// Reads a BLIF file into a LUT network.
///
/// Supports the combinational subset: `.model`, `.inputs`, `.outputs`,
/// `.names` (with `0`/`1`/`-` cubes of either output phase) and
/// `.end`. Latch and subcircuit constructs are rejected.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] on malformed or sequential input.
pub fn read<R: Read>(mut r: R) -> Result<LutNetwork, NetlistError> {
    let mut text = String::new();
    r.read_to_string(&mut text)
        .map_err(|e| NetlistError::parse(0, format!("io error: {e}")))?;
    // Join continuation lines ending in '\'.
    let mut model = String::new();
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut blocks: Vec<NamesBlock> = Vec::new();
    let mut current: Option<NamesBlock> = None;

    let mut logical_lines: Vec<(usize, String)> = Vec::new();
    {
        let mut pending = String::new();
        let mut start_line = 0usize;
        for (i, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim_end();
            if pending.is_empty() {
                start_line = i + 1;
            }
            if let Some(stripped) = line.strip_suffix('\\') {
                pending.push_str(stripped);
                pending.push(' ');
            } else {
                pending.push_str(line);
                if !pending.trim().is_empty() {
                    logical_lines.push((start_line, std::mem::take(&mut pending)));
                } else {
                    pending.clear();
                }
            }
        }
        if !pending.trim().is_empty() {
            logical_lines.push((start_line, pending));
        }
    }

    for (ln, line) in logical_lines {
        let line = line.trim();
        let mut toks = line.split_whitespace();
        let head = toks.next().unwrap_or("");
        match head {
            ".model" => model = toks.next().unwrap_or("top").to_string(),
            ".inputs" => inputs.extend(toks.map(str::to_string)),
            ".outputs" => outputs.extend(toks.map(str::to_string)),
            ".names" => {
                if let Some(b) = current.take() {
                    blocks.push(b);
                }
                let mut sigs: Vec<String> = toks.map(str::to_string).collect();
                let output = sigs
                    .pop()
                    .ok_or_else(|| NetlistError::parse(ln, ".names needs an output signal"))?;
                if sigs.len() > crate::truth::MAX_ARITY {
                    return Err(NetlistError::parse(
                        ln,
                        format!(".names with {} inputs exceeds max lut size 6", sigs.len()),
                    ));
                }
                current = Some(NamesBlock {
                    inputs: sigs,
                    output,
                    cubes: Vec::new(),
                    line: ln,
                });
            }
            ".end" => {
                if let Some(b) = current.take() {
                    blocks.push(b);
                }
            }
            ".latch" | ".subckt" | ".gate" => {
                return Err(NetlistError::parse(
                    ln,
                    format!("unsupported construct `{head}` (combinational blif only)"),
                ));
            }
            _ if head.starts_with('.') => {
                // Unknown dot-directives are skipped (e.g. .default_input_arrival).
            }
            _ => {
                // A cube row inside the current .names block.
                let block = current
                    .as_mut()
                    .ok_or_else(|| NetlistError::parse(ln, "cube row outside .names block"))?;
                let (pattern, out) = if block.inputs.is_empty() {
                    ("", head)
                } else {
                    let out = toks
                        .next()
                        .ok_or_else(|| NetlistError::parse(ln, "cube row missing output value"))?;
                    (head, out)
                };
                if pattern.len() != block.inputs.len() {
                    return Err(NetlistError::parse(
                        ln,
                        format!(
                            "cube `{pattern}` has {} columns, block has {} inputs",
                            pattern.len(),
                            block.inputs.len()
                        ),
                    ));
                }
                let mut care = 0u8;
                let mut values = 0u8;
                for (i, ch) in pattern.chars().enumerate() {
                    match ch {
                        '1' => {
                            care |= 1 << i;
                            values |= 1 << i;
                        }
                        '0' => care |= 1 << i,
                        '-' => {}
                        other => {
                            return Err(NetlistError::parse(
                                ln,
                                format!("bad cube character `{other}`"),
                            ))
                        }
                    }
                }
                let phase = match out {
                    "1" => true,
                    "0" => false,
                    other => {
                        return Err(NetlistError::parse(
                            ln,
                            format!("bad output value `{other}`"),
                        ))
                    }
                };
                block.cubes.push((Cube::new(care, values), phase));
            }
        }
    }
    if let Some(b) = current.take() {
        blocks.push(b);
    }

    // Build the network: PIs first, then topologically sort the blocks.
    let mut net = LutNetwork::with_name(model);
    let mut sig_map: HashMap<String, NodeId> = HashMap::new();
    for name in &inputs {
        let id = net.add_pi(name.clone());
        sig_map.insert(name.clone(), id);
    }
    let mut remaining: Vec<Option<NamesBlock>> = blocks.into_iter().map(Some).collect();
    let mut left = remaining.iter().filter(|b| b.is_some()).count();
    while left > 0 {
        let mut progressed = false;
        for slot in remaining.iter_mut() {
            let ready = match slot {
                Some(b) => b.inputs.iter().all(|s| sig_map.contains_key(s)),
                None => false,
            };
            if !ready {
                continue;
            }
            let b = slot.take().expect("checked above");
            left -= 1;
            progressed = true;
            let fanins: Vec<NodeId> = b.inputs.iter().map(|s| sig_map[s]).collect();
            let tt = truth_from_cubes(b.inputs.len(), &b.cubes)
                .map_err(|m| NetlistError::parse(b.line, m))?;
            let id = net
                .add_lut(fanins, tt)
                .map_err(|e| NetlistError::parse(b.line, e.to_string()))?;
            net.set_node_name(id, b.output.clone());
            if sig_map.insert(b.output.clone(), id).is_some() {
                return Err(NetlistError::parse(
                    b.line,
                    format!("signal `{}` defined twice", b.output),
                ));
            }
        }
        if !progressed {
            let stuck: Vec<&str> = remaining
                .iter()
                .flatten()
                .map(|b| b.output.as_str())
                .collect();
            return Err(NetlistError::parse(
                0,
                format!("cyclic or undriven signals: {}", stuck.join(", ")),
            ));
        }
    }
    for name in &outputs {
        let id = *sig_map
            .get(name)
            .ok_or_else(|| NetlistError::parse(0, format!("output `{name}` is undriven")))?;
        net.add_po(id, name.clone());
    }
    Ok(net)
}

fn truth_from_cubes(arity: usize, cubes: &[(Cube, bool)]) -> Result<TruthTable, String> {
    if cubes.is_empty() {
        // An empty .names block denotes constant 0.
        return Ok(TruthTable::const0(arity));
    }
    let phase = cubes[0].1;
    if cubes.iter().any(|&(_, p)| p != phase) {
        return Err("mixed-phase cube rows in one .names block".into());
    }
    let tt = TruthTable::from_fn(arity, |m| cubes.iter().any(|(c, _)| c.contains_minterm(m)));
    Ok(if phase { tt } else { tt.negate() })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LutNetwork {
        let mut net = LutNetwork::with_name("sample");
        let a = net.add_pi("a");
        let b = net.add_pi("b");
        let c = net.add_pi("c");
        let maj = net
            .add_lut(
                vec![a, b, c],
                TruthTable::from_fn(3, |m| m.count_ones() >= 2),
            )
            .unwrap();
        let x = net.add_lut(vec![maj, a], TruthTable::xor2()).unwrap();
        net.add_po(x, "f");
        net.add_po(maj, "g");
        net
    }

    fn assert_equivalent(n1: &LutNetwork, n2: &LutNetwork) {
        assert_eq!(n1.num_pis(), n2.num_pis());
        assert_eq!(n1.num_pos(), n2.num_pos());
        for m in 0..(1u32 << n1.num_pis()) {
            let inputs: Vec<bool> = (0..n1.num_pis()).map(|i| (m >> i) & 1 == 1).collect();
            assert_eq!(n1.eval_pos(&inputs), n2.eval_pos(&inputs), "at {m:b}");
        }
    }

    #[test]
    fn roundtrip() {
        let net = sample();
        let mut buf = Vec::new();
        write(&net, &mut buf).unwrap();
        let back = read(&buf[..]).unwrap();
        assert_equivalent(&net, &back);
        assert_eq!(back.name(), "sample");
    }

    #[test]
    fn reads_out_of_order_blocks() {
        let text = "\
.model ooo
.inputs a b
.outputs f
.names x a f
11 1
.names a b x
1- 1
-1 1
.end
";
        let net = read(text.as_bytes()).unwrap();
        // f = (a|b) & a = a
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            assert_eq!(net.eval_pos(&[a, b]), vec![a]);
        }
    }

    #[test]
    fn reads_offset_phase() {
        let text = "\
.model off
.inputs a b
.outputs f
.names a b f
11 0
.end
";
        let net = read(text.as_bytes()).unwrap();
        // f = !(a&b)
        assert_eq!(net.eval_pos(&[true, true]), vec![false]);
        assert_eq!(net.eval_pos(&[true, false]), vec![true]);
    }

    #[test]
    fn constant_blocks() {
        let text = "\
.model k
.inputs a
.outputs one zero
.names one
1
.names zero
.end
";
        let net = read(text.as_bytes()).unwrap();
        assert_eq!(net.eval_pos(&[false]), vec![true, false]);
    }

    #[test]
    fn rejects_latch() {
        let text = ".model s\n.inputs a\n.outputs q\n.latch a q 0\n.end\n";
        assert!(read(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_cycle() {
        let text = "\
.model c
.inputs a
.outputs f
.names f a g
11 1
.names g a f
11 1
.end
";
        let err = read(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("cyclic"));
    }

    #[test]
    fn rejects_mixed_phase() {
        let text = ".model m\n.inputs a b\n.outputs f\n.names a b f\n11 1\n00 0\n.end\n";
        assert!(read(text.as_bytes()).is_err());
    }

    #[test]
    fn continuation_lines() {
        let text = ".model c\n.inputs a \\\nb\n.outputs f\n.names a b f\n11 1\n.end\n";
        let net = read(text.as_bytes()).unwrap();
        assert_eq!(net.num_pis(), 2);
        assert_eq!(net.eval_pos(&[true, true]), vec![true]);
    }

    #[test]
    fn comments_stripped() {
        let text = ".model c # the model\n.inputs a\n.outputs f\n.names a f # buffer\n1 1\n.end\n";
        let net = read(text.as_bytes()).unwrap();
        assert_eq!(net.eval_pos(&[true]), vec![true]);
    }
}
