//! Levelized traversal schedules.
//!
//! Word-parallel simulators evaluate nodes level by level: every node
//! of level `l` depends only on nodes of level `< l`, so a levelized
//! order is always a valid evaluation order, and it is the order the
//! compiled simulation kernels execute restricted node subsets in.

use crate::id::NodeId;
use crate::network::LutNetwork;

/// Groups every node by its level: `levelize(net)[l]` lists the nodes
/// of level `l` in ascending id order. PIs (level 0) come first.
pub fn levelize(net: &LutNetwork) -> Vec<Vec<NodeId>> {
    let mut by_level: Vec<Vec<NodeId>> = vec![Vec::new(); net.depth() as usize + 1];
    for id in net.node_ids() {
        by_level[net.level(id) as usize].push(id);
    }
    by_level
}

/// Flattens the members of `mask` into a levelized evaluation order:
/// sorted by `(level, id)`. Because fanins always sit on strictly
/// smaller levels, evaluating the returned list front to back sees
/// every node after all of its fanins — provided `mask` is closed
/// under fanins (a fanin cone is).
///
/// # Panics
///
/// Panics if `mask.len()` differs from the network size.
pub fn levelized_order(net: &LutNetwork, mask: &[bool]) -> Vec<NodeId> {
    assert_eq!(mask.len(), net.len(), "mask must cover every node");
    let mut order: Vec<NodeId> = net.node_ids().filter(|&id| mask[id.index()]).collect();
    order.sort_by_key(|&id| (net.level(id), id));
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cone::multi_fanin_cone_mask;
    use crate::truth::TruthTable;

    fn chain() -> (LutNetwork, Vec<NodeId>) {
        let mut net = LutNetwork::new();
        let a = net.add_pi("a");
        let b = net.add_pi("b");
        let x = net.add_lut(vec![a, b], TruthTable::and2()).unwrap();
        let y = net.add_lut(vec![x, b], TruthTable::or2()).unwrap();
        let z = net.add_lut(vec![y, a], TruthTable::xor2()).unwrap();
        net.add_po(z, "z");
        (net, vec![a, b, x, y, z])
    }

    #[test]
    fn levelize_partitions_all_nodes() {
        let (net, nodes) = chain();
        let levels = levelize(&net);
        assert_eq!(levels.len(), net.depth() as usize + 1);
        let total: usize = levels.iter().map(Vec::len).sum();
        assert_eq!(total, net.len());
        for (l, group) in levels.iter().enumerate() {
            for &n in group {
                assert_eq!(net.level(n) as usize, l);
            }
        }
        // PIs are exactly level 0.
        assert_eq!(levels[0], vec![nodes[0], nodes[1]]);
    }

    #[test]
    fn levelized_order_respects_fanin_dependencies() {
        let (net, nodes) = chain();
        let mask = multi_fanin_cone_mask(&net, &[*nodes.last().unwrap()]);
        let order = levelized_order(&net, &mask);
        assert_eq!(order.len(), net.len(), "full cone of the output");
        let pos = |id: NodeId| order.iter().position(|&n| n == id).unwrap();
        for id in net.node_ids() {
            for &f in net.fanins(id) {
                assert!(pos(f) < pos(id), "{f} must precede {id}");
            }
        }
    }

    #[test]
    fn levelized_order_restricts_to_mask() {
        let (net, nodes) = chain();
        let x = nodes[2];
        let mask = multi_fanin_cone_mask(&net, &[x]);
        let order = levelized_order(&net, &mask);
        assert_eq!(order, vec![nodes[0], nodes[1], x]);
    }
}
