//! And-Inverter Graphs with structural hashing.
//!
//! The benchmark generators build circuits as AIGs (the natural
//! output of logic described with `and`/`not`), and the technology
//! mapper ([`simgen-mapping`](https://docs.rs)) converts them into the
//! K-LUT networks the sweeping flow consumes — mirroring the paper's
//! ABC pipeline (`read benchmark; if -K 6`).
//!
//! Representation follows the AIGER convention: variable 0 is the
//! constant false, variables `1..=num_pis` are the primary inputs, and
//! each AND node gets the next variable. A literal is `2*var + compl`.

use std::collections::HashMap;

use crate::error::NetlistError;

/// An AIG variable index (0 = constant false).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct AigVar(pub u32);

/// An AIG literal: a variable with an optional complement bit.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AigLit(pub u32);

impl AigLit {
    /// The constant-false literal.
    pub const FALSE: AigLit = AigLit(0);
    /// The constant-true literal.
    pub const TRUE: AigLit = AigLit(1);

    /// Builds a literal from a variable and complement flag.
    pub fn new(var: AigVar, complement: bool) -> Self {
        AigLit(var.0 * 2 + u32::from(complement))
    }

    /// The underlying variable.
    pub fn var(self) -> AigVar {
        AigVar(self.0 / 2)
    }

    /// True if the literal is complemented.
    pub fn is_complement(self) -> bool {
        self.0 & 1 == 1
    }

    /// True if the literal is one of the two constants.
    pub fn is_const(self) -> bool {
        self.0 < 2
    }
}

impl std::ops::Not for AigLit {
    type Output = AigLit;
    fn not(self) -> AigLit {
        AigLit(self.0 ^ 1)
    }
}

impl std::fmt::Debug for AigLit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_complement() {
            write!(f, "!v{}", self.var().0)
        } else {
            write!(f, "v{}", self.var().0)
        }
    }
}

/// An And-Inverter Graph with structural hashing and standard derived
/// gates (`or`, `xor`, `mux`, …).
///
/// # Example
///
/// ```
/// use simgen_netlist::Aig;
///
/// let mut aig = Aig::new();
/// let a = aig.add_pi();
/// let b = aig.add_pi();
/// let x = aig.xor(a, b);
/// aig.add_po(x, "sum");
/// assert_eq!(aig.num_ands(), 3); // xor costs three ANDs
/// assert!(aig.eval(&[true, false])[0]);
/// assert!(!aig.eval(&[true, true])[0]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Aig {
    num_pis: u32,
    /// `ands[i]` is the fanin pair of variable `num_pis + 1 + i`.
    ands: Vec<(AigLit, AigLit)>,
    pos: Vec<(AigLit, String)>,
    strash: HashMap<(AigLit, AigLit), AigVar>,
    name: String,
}

impl Aig {
    /// Creates an empty AIG.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty AIG with a name.
    pub fn with_name(name: impl Into<String>) -> Self {
        Aig {
            name: name.into(),
            ..Self::default()
        }
    }

    /// The AIG's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the AIG.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Adds a primary input and returns its (positive) literal.
    ///
    /// # Panics
    ///
    /// Panics if AND nodes have already been added: AIGER numbering
    /// requires all PIs to precede all ANDs.
    pub fn add_pi(&mut self) -> AigLit {
        assert!(
            self.ands.is_empty(),
            "all pis must be added before the first and node"
        );
        self.num_pis += 1;
        AigLit::new(AigVar(self.num_pis), false)
    }

    /// Adds `n` primary inputs, returning their literals.
    pub fn add_pis(&mut self, n: usize) -> Vec<AigLit> {
        (0..n).map(|_| self.add_pi()).collect()
    }

    /// Registers a primary output.
    pub fn add_po(&mut self, lit: AigLit, name: impl Into<String>) {
        debug_assert!(lit.var().0 <= self.num_pis + self.ands.len() as u32);
        self.pos.push((lit, name.into()));
    }

    /// Number of primary inputs.
    pub fn num_pis(&self) -> usize {
        self.num_pis as usize
    }

    /// Number of AND nodes.
    pub fn num_ands(&self) -> usize {
        self.ands.len()
    }

    /// Number of primary outputs.
    pub fn num_pos(&self) -> usize {
        self.pos.len()
    }

    /// Total variable count (constant + PIs + ANDs).
    pub fn num_vars(&self) -> usize {
        1 + self.num_pis as usize + self.ands.len()
    }

    /// The primary outputs as (literal, name) pairs.
    pub fn pos(&self) -> &[(AigLit, String)] {
        &self.pos
    }

    /// The fanins of AND variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is not an AND node.
    pub fn and_fanins(&self, var: AigVar) -> (AigLit, AigLit) {
        let idx = var
            .0
            .checked_sub(self.num_pis + 1)
            .expect("variable is a pi or constant, not an and") as usize;
        self.ands[idx]
    }

    /// True if `var` indexes an AND node.
    pub fn is_and(&self, var: AigVar) -> bool {
        var.0 > self.num_pis && (var.0 - self.num_pis - 1) < self.ands.len() as u32
    }

    /// True if `var` indexes a primary input.
    pub fn is_pi(&self, var: AigVar) -> bool {
        var.0 >= 1 && var.0 <= self.num_pis
    }

    /// Creates (or reuses, via structural hashing) the AND of two
    /// literals. Constant folding and trivial cases (`x & x`,
    /// `x & !x`) are simplified away.
    pub fn and(&mut self, a: AigLit, b: AigLit) -> AigLit {
        // Normalize order for hashing.
        let (a, b) = if a.0 <= b.0 { (a, b) } else { (b, a) };
        if a == AigLit::FALSE {
            return AigLit::FALSE;
        }
        if a == AigLit::TRUE {
            return b;
        }
        if a == b {
            return a;
        }
        if a == !b {
            return AigLit::FALSE;
        }
        if let Some(&var) = self.strash.get(&(a, b)) {
            return AigLit::new(var, false);
        }
        let var = AigVar(self.num_pis + 1 + self.ands.len() as u32);
        self.ands.push((a, b));
        self.strash.insert((a, b), var);
        AigLit::new(var, false)
    }

    /// OR via De Morgan.
    pub fn or(&mut self, a: AigLit, b: AigLit) -> AigLit {
        !self.and(!a, !b)
    }

    /// XOR (three ANDs).
    pub fn xor(&mut self, a: AigLit, b: AigLit) -> AigLit {
        let n1 = self.and(a, !b);
        let n2 = self.and(!a, b);
        self.or(n1, n2)
    }

    /// XNOR.
    pub fn xnor(&mut self, a: AigLit, b: AigLit) -> AigLit {
        !self.xor(a, b)
    }

    /// Multiplexer: `sel ? t : e`.
    pub fn mux(&mut self, sel: AigLit, t: AigLit, e: AigLit) -> AigLit {
        let a = self.and(sel, t);
        let b = self.and(!sel, e);
        self.or(a, b)
    }

    /// Majority of three.
    pub fn maj3(&mut self, a: AigLit, b: AigLit, c: AigLit) -> AigLit {
        let ab = self.and(a, b);
        let ac = self.and(a, c);
        let bc = self.and(b, c);
        let t = self.or(ab, ac);
        self.or(t, bc)
    }

    /// N-ary AND of a literal slice (balanced tree).
    pub fn and_many(&mut self, lits: &[AigLit]) -> AigLit {
        self.reduce(lits, AigLit::TRUE, Self::and)
    }

    /// N-ary OR of a literal slice (balanced tree).
    pub fn or_many(&mut self, lits: &[AigLit]) -> AigLit {
        self.reduce(lits, AigLit::FALSE, Self::or)
    }

    /// N-ary XOR of a literal slice (balanced tree).
    pub fn xor_many(&mut self, lits: &[AigLit]) -> AigLit {
        self.reduce(lits, AigLit::FALSE, Self::xor)
    }

    fn reduce(
        &mut self,
        lits: &[AigLit],
        empty: AigLit,
        mut op: impl FnMut(&mut Self, AigLit, AigLit) -> AigLit,
    ) -> AigLit {
        match lits.len() {
            0 => empty,
            1 => lits[0],
            _ => {
                let mut layer = lits.to_vec();
                while layer.len() > 1 {
                    let mut next = Vec::with_capacity(layer.len().div_ceil(2));
                    for pair in layer.chunks(2) {
                        next.push(if pair.len() == 2 {
                            op(self, pair[0], pair[1])
                        } else {
                            pair[0]
                        });
                    }
                    layer = next;
                }
                layer[0]
            }
        }
    }

    /// Evaluates all POs on one input assignment.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != num_pis()`.
    pub fn eval(&self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(inputs.len(), self.num_pis(), "wrong input count");
        let mut vals = vec![false; self.num_vars()];
        for (i, &b) in inputs.iter().enumerate() {
            vals[i + 1] = b;
        }
        for (i, &(a, b)) in self.ands.iter().enumerate() {
            let va = vals[a.var().0 as usize] ^ a.is_complement();
            let vb = vals[b.var().0 as usize] ^ b.is_complement();
            vals[self.num_pis as usize + 1 + i] = va && vb;
        }
        self.pos
            .iter()
            .map(|&(l, _)| vals[l.var().0 as usize] ^ l.is_complement())
            .collect()
    }

    /// Structural level of every variable (constant and PIs at 0).
    pub fn levels(&self) -> Vec<u32> {
        let mut lv = vec![0u32; self.num_vars()];
        for (i, &(a, b)) in self.ands.iter().enumerate() {
            let v = self.num_pis as usize + 1 + i;
            lv[v] = 1 + lv[a.var().0 as usize].max(lv[b.var().0 as usize]);
        }
        lv
    }

    /// Removes all primary outputs (used when re-labelling outputs,
    /// e.g. while applying an AIGER symbol table).
    pub fn clear_pos(&mut self) {
        self.pos.clear();
    }

    /// Returns a copy of this AIG with its primary outputs replaced.
    ///
    /// The literals must reference existing variables.
    pub fn with_renamed_pos(&self, pos: Vec<(AigLit, String)>) -> Aig {
        let mut out = self.clone();
        out.clear_pos();
        for (l, n) in pos {
            out.add_po(l, n);
        }
        out
    }

    /// Returns a copy with all AND nodes unreachable from the POs
    /// removed (dead-node elimination). Variable numbering is
    /// recompacted; PO functions are unchanged.
    pub fn compact(&self) -> Aig {
        let mut live = vec![false; self.num_vars()];
        let mut stack: Vec<AigVar> = self
            .pos
            .iter()
            .map(|(l, _)| l.var())
            .filter(|&v| self.is_and(v))
            .collect();
        while let Some(v) = stack.pop() {
            if live[v.0 as usize] {
                continue;
            }
            live[v.0 as usize] = true;
            let (a, b) = self.and_fanins(v);
            for f in [a.var(), b.var()] {
                if self.is_and(f) && !live[f.0 as usize] {
                    stack.push(f);
                }
            }
        }
        let mut out = Aig::with_name(self.name());
        let mut map: Vec<AigLit> = Vec::with_capacity(self.num_vars());
        map.push(AigLit::FALSE);
        for _ in 0..self.num_pis() {
            map.push(out.add_pi());
        }
        for i in 0..self.num_ands() {
            let v = AigVar((self.num_pis() + 1 + i) as u32);
            if !live[v.0 as usize] {
                map.push(AigLit::FALSE); // placeholder, never read
                continue;
            }
            let (a, b) = self.and_fanins(v);
            let fa = Self::translate(&map, a);
            let fb = Self::translate(&map, b);
            map.push(out.and(fa, fb));
        }
        for (l, name) in &self.pos {
            out.add_po(Self::translate(&map, *l), name.clone());
        }
        out
    }

    fn translate(map: &[AigLit], l: AigLit) -> AigLit {
        let base = map[l.var().0 as usize];
        if l.is_complement() {
            !base
        } else {
            base
        }
    }

    /// Validates internal invariants (fanin ordering, po targets).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Invalid`] describing the first violated
    /// invariant.
    pub fn check(&self) -> Result<(), NetlistError> {
        for (i, &(a, b)) in self.ands.iter().enumerate() {
            let v = self.num_pis + 1 + i as u32;
            if a.var().0 >= v || b.var().0 >= v {
                return Err(NetlistError::Invalid(format!(
                    "and variable {v} has a fanin that does not precede it"
                )));
            }
        }
        for (l, name) in &self.pos {
            if l.var().0 as usize >= self.num_vars() {
                return Err(NetlistError::Invalid(format!(
                    "po {name} references variable {} out of range",
                    l.var().0
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding() {
        let l = AigLit::new(AigVar(5), true);
        assert_eq!(l.0, 11);
        assert_eq!(l.var(), AigVar(5));
        assert!(l.is_complement());
        assert_eq!((!l).0, 10);
        assert!(AigLit::FALSE.is_const() && AigLit::TRUE.is_const());
        assert_eq!(!AigLit::FALSE, AigLit::TRUE);
    }

    #[test]
    fn and_simplifications() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        assert_eq!(g.and(AigLit::FALSE, a), AigLit::FALSE);
        assert_eq!(g.and(AigLit::TRUE, a), a);
        assert_eq!(g.and(a, a), a);
        assert_eq!(g.and(a, !a), AigLit::FALSE);
        assert_eq!(g.num_ands(), 0);
        let x = g.and(a, b);
        let y = g.and(b, a);
        assert_eq!(x, y, "structural hashing dedups commuted fanins");
        assert_eq!(g.num_ands(), 1);
    }

    #[test]
    fn derived_gates_evaluate_correctly() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let c = g.add_pi();
        let and = g.and(a, b);
        let or = g.or(a, b);
        let xor = g.xor(a, b);
        let mux = g.mux(a, b, c);
        let maj = g.maj3(a, b, c);
        for l in [and, or, xor, mux, maj] {
            g.add_po(l, "o");
        }
        for m in 0..8u32 {
            let va = m & 1 == 1;
            let vb = m & 2 == 2;
            let vc = m & 4 == 4;
            let out = g.eval(&[va, vb, vc]);
            assert_eq!(out[0], va && vb);
            assert_eq!(out[1], va || vb);
            assert_eq!(out[2], va ^ vb);
            assert_eq!(out[3], if va { vb } else { vc });
            #[allow(clippy::nonminimal_bool)]
            let maj = (va && vb) || (va && vc) || (vb && vc);
            assert_eq!(out[4], maj);
        }
    }

    #[test]
    fn nary_reductions() {
        let mut g = Aig::new();
        let pis = g.add_pis(5);
        let and = g.and_many(&pis);
        let or = g.or_many(&pis);
        let xor = g.xor_many(&pis);
        g.add_po(and, "and");
        g.add_po(or, "or");
        g.add_po(xor, "xor");
        for m in 0..32u32 {
            let inputs: Vec<bool> = (0..5).map(|i| (m >> i) & 1 == 1).collect();
            let out = g.eval(&inputs);
            assert_eq!(out[0], m == 31);
            assert_eq!(out[1], m != 0);
            assert_eq!(out[2], m.count_ones() % 2 == 1);
        }
        assert_eq!(g.and_many(&[]), AigLit::TRUE);
        assert_eq!(g.or_many(&[]), AigLit::FALSE);
        let a = pis[0];
        assert_eq!(g.and_many(&[a]), a);
    }

    #[test]
    fn levels_and_check() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let x = g.and(a, b);
        let y = g.and(x, a);
        g.add_po(y, "f");
        let lv = g.levels();
        assert_eq!(lv[x.var().0 as usize], 1);
        assert_eq!(lv[y.var().0 as usize], 2);
        assert!(g.check().is_ok());
    }

    #[test]
    fn compact_removes_dead_nodes() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let used = g.and(a, b);
        let _dead1 = g.and(a, !b);
        let _dead2 = g.and(!a, !b);
        g.add_po(used, "f");
        assert_eq!(g.num_ands(), 3);
        let c = g.compact();
        assert_eq!(c.num_ands(), 1);
        for m in 0..4u32 {
            let ins = vec![m & 1 == 1, m & 2 == 2];
            assert_eq!(g.eval(&ins), c.eval(&ins));
        }
    }

    #[test]
    fn compact_keeps_complemented_po_drivers() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let x = g.and(a, b);
        g.add_po(!x, "nf");
        g.add_po(AigLit::TRUE, "t");
        let c = g.compact();
        assert_eq!(c.num_ands(), 1);
        assert_eq!(c.eval(&[true, true]), vec![false, true]);
        assert_eq!(c.eval(&[false, true]), vec![true, true]);
    }

    #[test]
    #[should_panic(expected = "all pis must be added before")]
    fn pis_after_ands_panic() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let _ = g.and(a, b);
        let _ = g.add_pi();
    }
}
