//! Error type shared by all netlist operations.

use std::error::Error;
use std::fmt;

/// Errors produced while building, validating or parsing networks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A LUT was added whose fanin count does not match its truth
    /// table arity, or exceeds the supported maximum of six inputs.
    ArityMismatch {
        /// Number of fanins supplied.
        fanins: usize,
        /// Arity the truth table declares.
        arity: usize,
    },
    /// A fanin referenced a node id that does not exist yet; networks
    /// are built strictly in topological order.
    DanglingFanin {
        /// The offending fanin id index.
        fanin: usize,
        /// Number of nodes currently in the network.
        nodes: usize,
    },
    /// A primary output referenced a nonexistent node.
    DanglingOutput {
        /// The offending node index.
        node: usize,
    },
    /// A parse error with line information.
    Parse {
        /// 1-based line the error occurred on (0 when unknown).
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// Structural validation failed (see [`crate::validate`]).
    Invalid(String),
}

impl NetlistError {
    /// Convenience constructor for parse errors.
    pub fn parse(line: usize, message: impl Into<String>) -> Self {
        NetlistError::Parse {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::ArityMismatch { fanins, arity } => write!(
                f,
                "lut fanin count {fanins} does not match truth table arity {arity}"
            ),
            NetlistError::DanglingFanin { fanin, nodes } => write!(
                f,
                "fanin n{fanin} does not exist in a network of {nodes} nodes"
            ),
            NetlistError::DanglingOutput { node } => {
                write!(f, "primary output references nonexistent node n{node}")
            }
            NetlistError::Parse { line, message } => {
                if *line == 0 {
                    write!(f, "parse error: {message}")
                } else {
                    write!(f, "parse error at line {line}: {message}")
                }
            }
            NetlistError::Invalid(message) => write!(f, "invalid network: {message}"),
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = NetlistError::ArityMismatch {
            fanins: 3,
            arity: 2,
        };
        assert_eq!(
            e.to_string(),
            "lut fanin count 3 does not match truth table arity 2"
        );
        let e = NetlistError::parse(7, "bad token");
        assert_eq!(e.to_string(), "parse error at line 7: bad token");
        let e = NetlistError::parse(0, "truncated file");
        assert_eq!(e.to_string(), "parse error: truncated file");
    }

    #[test]
    fn implements_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<NetlistError>();
    }
}
