//! Fanin/fanout cone computations.
//!
//! SimGen's Algorithm 1 traverses the *fanin cone* of each target node
//! (the `listDfs` variable in the paper): the set of nodes that can
//! reach the target through fanin edges, discovered by a depth-first
//! search from the target toward the PIs.

use crate::id::NodeId;
use crate::network::LutNetwork;

/// Depth-first listing of the fanin cone of `root`, root first.
///
/// The returned list contains every node (including PIs and `root`
/// itself) from which `root` is reachable through fanin edges. The
/// order is DFS pre-order from the root, which is the traversal
/// order Algorithm 1's `dfs(targetNode)` produces.
pub fn fanin_cone_dfs(net: &LutNetwork, root: NodeId) -> Vec<NodeId> {
    let mut visited = vec![false; net.len()];
    let mut order = Vec::new();
    let mut stack = vec![root];
    while let Some(n) = stack.pop() {
        if visited[n.index()] {
            continue;
        }
        visited[n.index()] = true;
        order.push(n);
        for &f in net.fanins(n).iter().rev() {
            if !visited[f.index()] {
                stack.push(f);
            }
        }
    }
    order
}

/// The set of PIs inside the fanin cone of `root` (its structural
/// support).
pub fn cone_pis(net: &LutNetwork, root: NodeId) -> Vec<NodeId> {
    fanin_cone_dfs(net, root)
        .into_iter()
        .filter(|&n| net.is_pi(n))
        .collect()
}

/// Membership bitmap for the fanin cone of `root`, indexed by node id.
pub fn fanin_cone_mask(net: &LutNetwork, root: NodeId) -> Vec<bool> {
    let mut mask = vec![false; net.len()];
    for n in fanin_cone_dfs(net, root) {
        mask[n.index()] = true;
    }
    mask
}

/// Membership bitmap of the transitive fanout cone of `root`
/// (excluding `root` itself), indexed by node id.
pub fn fanout_cone_mask(net: &LutNetwork, root: NodeId) -> Vec<bool> {
    let mut mask = vec![false; net.len()];
    let mut stack: Vec<NodeId> = net.fanouts(root).to_vec();
    while let Some(n) = stack.pop() {
        if mask[n.index()] {
            continue;
        }
        mask[n.index()] = true;
        stack.extend_from_slice(net.fanouts(n));
    }
    mask
}

/// Membership bitmap of the joint fanin cone of several roots
/// (deduplicated union, roots included), indexed by node id.
///
/// This is the cone form the incremental resimulator consumes: the
/// set of nodes whose lanes must be recomputed so that every root's
/// signature stays exact.
pub fn multi_fanin_cone_mask(net: &LutNetwork, roots: &[NodeId]) -> Vec<bool> {
    let mut mask = vec![false; net.len()];
    let mut stack: Vec<NodeId> = roots.to_vec();
    while let Some(n) = stack.pop() {
        if mask[n.index()] {
            continue;
        }
        mask[n.index()] = true;
        for &f in net.fanins(n) {
            if !mask[f.index()] {
                stack.push(f);
            }
        }
    }
    mask
}

/// Joint fanin cone of several roots (deduplicated union), in
/// discovery order.
pub fn multi_fanin_cone(net: &LutNetwork, roots: &[NodeId]) -> Vec<NodeId> {
    let mut visited = vec![false; net.len()];
    let mut order = Vec::new();
    let mut stack: Vec<NodeId> = roots.to_vec();
    while let Some(n) = stack.pop() {
        if visited[n.index()] {
            continue;
        }
        visited[n.index()] = true;
        order.push(n);
        for &f in net.fanins(n) {
            if !visited[f.index()] {
                stack.push(f);
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truth::TruthTable;

    /// Diamond: f = (a & b) | (b & c); shared input b.
    fn diamond() -> (LutNetwork, [NodeId; 6]) {
        let mut net = LutNetwork::new();
        let a = net.add_pi("a");
        let b = net.add_pi("b");
        let c = net.add_pi("c");
        let x = net.add_lut(vec![a, b], TruthTable::and2()).unwrap();
        let y = net.add_lut(vec![b, c], TruthTable::and2()).unwrap();
        let f = net.add_lut(vec![x, y], TruthTable::or2()).unwrap();
        net.add_po(f, "f");
        (net, [a, b, c, x, y, f])
    }

    #[test]
    fn cone_contains_all_ancestors_once() {
        let (net, [a, b, c, x, y, f]) = diamond();
        let cone = fanin_cone_dfs(&net, f);
        assert_eq!(cone[0], f);
        assert_eq!(cone.len(), 6);
        for n in [a, b, c, x, y, f] {
            assert_eq!(cone.iter().filter(|&&m| m == n).count(), 1);
        }
    }

    #[test]
    fn cone_of_intermediate_node() {
        let (net, [a, b, _c, x, _y, _f]) = diamond();
        let cone = fanin_cone_dfs(&net, x);
        assert_eq!(cone.len(), 3);
        assert!(cone.contains(&a) && cone.contains(&b) && cone.contains(&x));
    }

    #[test]
    fn cone_pis_is_structural_support() {
        let (net, [a, b, c, _x, y, f]) = diamond();
        let mut pis = cone_pis(&net, f);
        pis.sort();
        assert_eq!(pis, vec![a, b, c]);
        let mut pis = cone_pis(&net, y);
        pis.sort();
        assert_eq!(pis, vec![b, c]);
    }

    #[test]
    fn pi_cone_is_itself() {
        let (net, [a, ..]) = diamond();
        assert_eq!(fanin_cone_dfs(&net, a), vec![a]);
    }

    #[test]
    fn fanout_cone() {
        let (net, [_a, b, _c, x, y, f]) = diamond();
        let m = fanout_cone_mask(&net, b);
        assert!(m[x.index()] && m[y.index()] && m[f.index()]);
        assert!(!m[b.index()]);
        let m = fanout_cone_mask(&net, f);
        assert!(m.iter().all(|&v| !v));
    }

    #[test]
    fn multi_cone_unions() {
        let (net, [a, b, c, x, y, _f]) = diamond();
        let cone = multi_fanin_cone(&net, &[x, y]);
        assert_eq!(cone.len(), 5);
        for n in [a, b, c, x, y] {
            assert!(cone.contains(&n));
        }
    }

    #[test]
    fn multi_cone_mask_matches_listing() {
        let (net, [_a, _b, _c, x, y, f]) = diamond();
        for roots in [vec![x], vec![x, y], vec![f], vec![y, f]] {
            let mask = multi_fanin_cone_mask(&net, &roots);
            let listed = multi_fanin_cone(&net, &roots);
            for id in net.node_ids() {
                assert_eq!(mask[id.index()], listed.contains(&id), "node {id}");
            }
        }
    }
}
