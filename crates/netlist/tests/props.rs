//! Property-based tests of the netlist substrate: truth-table
//! algebra, cube covers, file-format round trips, stacking and MFFC
//! invariants over randomly generated structures.

use proptest::prelude::*;

use simgen_netlist::aig::{Aig, AigLit};
use simgen_netlist::cone::{cone_pis, fanin_cone_dfs};
use simgen_netlist::mffc::{mffc_of, reference_counts};
use simgen_netlist::{aiger, bench_fmt, blif, validate};
use simgen_netlist::{LutNetwork, NodeId, TruthTable};

fn arb_tt() -> impl Strategy<Value = TruthTable> {
    (0usize..=6, any::<u64>())
        .prop_map(|(arity, bits)| TruthTable::from_bits(arity, bits).expect("arity <= 6"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn onset_offset_covers_partition_the_space(tt in arb_tt()) {
        let n = tt.arity();
        for m in 0..(1u64 << n) {
            let on = tt.onset_cover().iter().any(|c| c.contains_minterm(m));
            let off = tt.offset_cover().iter().any(|c| c.contains_minterm(m));
            prop_assert_eq!(on, tt.eval(m), "onset exactness at {}", m);
            prop_assert_eq!(off, !tt.eval(m), "offset exactness at {}", m);
            prop_assert_ne!(on, off, "covers partition at {}", m);
        }
    }

    #[test]
    fn prime_implicants_are_implicants_and_prime(tt in arb_tt()) {
        let n = tt.arity();
        for phase in [true, false] {
            for cube in tt.prime_implicants(phase) {
                // Implicant: every covered minterm is in the set.
                for m in 0..(1u64 << n) {
                    if cube.contains_minterm(m) {
                        prop_assert_eq!(tt.eval(m), phase);
                    }
                }
                // Prime: dropping any specified literal leaves the set.
                for i in 0..n {
                    if cube.input(i).is_some() {
                        let weaker = simgen_netlist::Cube::new(
                            cube.care() & !(1 << i),
                            cube.values(),
                        );
                        let escapes = (0..(1u64 << n))
                            .any(|m| weaker.contains_minterm(m) && tt.eval(m) != phase);
                        prop_assert!(escapes, "cube not prime on input {}", i);
                    }
                }
            }
        }
    }

    #[test]
    fn cofactor_shannon_identity(tt in arb_tt(), var in 0usize..6) {
        prop_assume!(tt.arity() > 0);
        let var = var % tt.arity();
        let c0 = tt.cofactor0(var);
        let c1 = tt.cofactor1(var);
        for m in 0..(1u64 << tt.arity()) {
            let expect = if (m >> var) & 1 == 1 { c1.eval(m) } else { c0.eval(m) };
            prop_assert_eq!(tt.eval(m), expect);
        }
        // Cofactors do not depend on the cofactored variable.
        prop_assert!(!c0.depends_on(var));
        prop_assert!(!c1.depends_on(var));
    }

    #[test]
    fn negate_flips_covers(tt in arb_tt()) {
        let neg = tt.negate();
        prop_assert_eq!(tt.onset_cover().len(), neg.offset_cover().len());
        prop_assert_eq!(tt.count_ones() + neg.count_ones(), 1 << tt.arity());
    }
}

/// Random AIG spec for format round trips.
#[derive(Clone, Debug)]
struct AigSpec {
    pis: usize,
    ands: Vec<(usize, usize, bool, bool)>,
    pos: Vec<(usize, bool)>,
}

fn arb_aig_spec() -> impl Strategy<Value = AigSpec> {
    (
        1usize..8,
        prop::collection::vec(
            (0usize..999, 0usize..999, any::<bool>(), any::<bool>()),
            0..80,
        ),
        prop::collection::vec((0usize..999, any::<bool>()), 1..6),
    )
        .prop_map(|(pis, ands, pos)| AigSpec { pis, ands, pos })
}

fn build(spec: &AigSpec) -> Aig {
    let mut g = Aig::with_name("prop");
    let mut pool: Vec<AigLit> = g.add_pis(spec.pis);
    for &(i, j, ci, cj) in &spec.ands {
        let a = pool[i % pool.len()];
        let b = pool[j % pool.len()];
        pool.push(g.and(if ci { !a } else { a }, if cj { !b } else { b }));
    }
    for (k, &(i, c)) in spec.pos.iter().enumerate() {
        let l = pool[i % pool.len()];
        g.add_po(if c { !l } else { l }, format!("o{k}"));
    }
    g
}

fn equivalent(a: &Aig, b: &Aig) -> bool {
    if a.num_pis() != b.num_pis() || a.num_pos() != b.num_pos() {
        return false;
    }
    let n = a.num_pis();
    let cap = 1u64 << n.min(8);
    (0..cap).all(|m| {
        let ins: Vec<bool> = (0..n).map(|i| (m >> i) & 1 == 1).collect();
        a.eval(&ins) == b.eval(&ins)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn aiger_roundtrips(spec in arb_aig_spec()) {
        let g = build(&spec);
        let mut buf = Vec::new();
        aiger::write_ascii(&g, &mut buf).expect("write ascii");
        let back = aiger::read(&buf[..]).expect("read ascii");
        prop_assert!(equivalent(&g, &back));

        let mut buf = Vec::new();
        aiger::write_binary(&g, &mut buf).expect("write binary");
        let back = aiger::read(&buf[..]).expect("read binary");
        prop_assert!(equivalent(&g, &back));
    }

    #[test]
    fn bench_roundtrips(spec in arb_aig_spec()) {
        let g = build(&spec);
        let mut buf = Vec::new();
        bench_fmt::write(&g, &mut buf).expect("write bench");
        let back = bench_fmt::read(&buf[..]).expect("read bench");
        prop_assert!(equivalent(&g, &back));
    }
}

/// Random LUT network spec.
#[derive(Clone, Debug)]
struct NetSpec {
    pis: usize,
    luts: Vec<(Vec<usize>, u64)>,
}

fn arb_net_spec() -> impl Strategy<Value = NetSpec> {
    (
        1usize..6,
        prop::collection::vec(
            (prop::collection::vec(0usize..999, 1..5), any::<u64>()),
            1..30,
        ),
    )
        .prop_map(|(pis, luts)| NetSpec { pis, luts })
}

fn build_net(spec: &NetSpec) -> LutNetwork {
    let mut net = LutNetwork::with_name("prop");
    let mut pool: Vec<NodeId> = (0..spec.pis).map(|i| net.add_pi(format!("p{i}"))).collect();
    for (picks, bits) in &spec.luts {
        let mut fanins = Vec::new();
        for &p in picks {
            let cand = pool[p % pool.len()];
            if !fanins.contains(&cand) {
                fanins.push(cand);
            }
        }
        let tt = TruthTable::from_bits(fanins.len(), *bits).expect("arity <= 4");
        pool.push(net.add_lut(fanins, tt).expect("topo order"));
    }
    net.add_po(*pool.last().expect("nonempty"), "f");
    net
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn blif_roundtrips(spec in arb_net_spec()) {
        let net = build_net(&spec);
        let mut buf = Vec::new();
        blif::write(&net, &mut buf).expect("write blif");
        let back = blif::read(&buf[..]).expect("read blif");
        validate::check(&back).expect("valid");
        let n = net.num_pis();
        for m in 0..(1u64 << n) {
            let ins: Vec<bool> = (0..n).map(|i| (m >> i) & 1 == 1).collect();
            prop_assert_eq!(net.eval_pos(&ins), back.eval_pos(&ins));
        }
    }

    #[test]
    fn cones_contain_support(spec in arb_net_spec()) {
        let net = build_net(&spec);
        let root = net.pos()[0].node;
        let cone = fanin_cone_dfs(&net, root);
        // Every cone member reaches the root: walked forward, the
        // fanout closure of each member must include root.
        for &n in &cone {
            let mut seen = vec![false; net.len()];
            let mut stack = vec![n];
            let mut reaches = false;
            while let Some(x) = stack.pop() {
                if x == root {
                    reaches = true;
                    break;
                }
                if seen[x.index()] {
                    continue;
                }
                seen[x.index()] = true;
                stack.extend_from_slice(net.fanouts(x));
            }
            prop_assert!(reaches, "{n} in cone but cannot reach root");
        }
        // And the structural support is exactly the cone PIs.
        let pis = cone_pis(&net, root);
        prop_assert!(pis.iter().all(|&p| net.is_pi(p)));
    }

    #[test]
    fn mffc_interiors_are_exclusive(spec in arb_net_spec()) {
        let net = build_net(&spec);
        let refs = reference_counts(&net);
        // Reference counts equal fanout counts + PO references.
        for id in net.node_ids() {
            prop_assert_eq!(
                refs[id.index()] as usize,
                net.fanout_count_with_pos(id)
            );
        }
        for id in net.node_ids().filter(|&n| !net.is_pi(n)) {
            let m = mffc_of(&net, id);
            // Every interior node other than the root reaches POs only
            // through the root: all its fanouts are inside the MFFC.
            for &n in &m.interior {
                if n == m.root {
                    continue;
                }
                for &fo in net.fanouts(n) {
                    prop_assert!(
                        m.interior.contains(&fo),
                        "{n} escapes the mffc of {id} via {fo}"
                    );
                }
            }
        }
    }
}
