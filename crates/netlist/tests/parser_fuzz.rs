//! Fuzz-style robustness tests for the file-format readers.
//!
//! The parsers are the tool's attack surface: they consume files the
//! user found on disk, not structures the library built. The contract
//! is that **no byte stream makes a reader panic** — malformed input
//! must come back as `Err(NetlistError::Parse)` (or, rarely, parse as
//! something harmless), never as an abort, an arithmetic overflow or a
//! runaway allocation.
//!
//! Two layers of coverage:
//!
//! 1. Property tests driving arbitrary and semi-structured byte
//!    streams through all three readers.
//! 2. A checked-in corpus (`tests/corpus/`) of truncated and corrupt
//!    headers distilled from defects found while hardening the
//!    parsers; each file must be rejected cleanly.

use proptest::prelude::*;

use simgen_netlist::{aiger, bench_fmt, blif};

/// Every reader accepts any byte stream without panicking.
fn feed_all(bytes: &[u8]) {
    let _ = aiger::read(bytes);
    let _ = bench_fmt::read(bytes);
    let _ = blif::read(bytes);
}

/// Line fragments biased toward the parsers' tricky spots: reversed
/// parentheses, empty gate bodies, dangling continuations, cube rows
/// adrift of any `.names` block.
const FRAGMENTS: &[&str] = &[
    "INPUT(a)\n",
    "OUTPUT(f)\n",
    "f = AND(a, b)\n",
    "x = )AND(\n",
    "g = NOT()\n",
    "( = (((\n",
    ")\n",
    "= \n",
    "h = MUX(a)\n",
    ".model m\n",
    ".inputs a b\n",
    ".outputs f\n",
    ".names a b f\n",
    "11 1\n",
    "-- 1\n",
    "1 \n",
    ".names f\n",
    ".end\n",
    "\\\n",
    ".latch a b 0\n",
    "# comment\n",
    "aag 3 2 0 1 1\n",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        feed_all(&bytes);
    }

    #[test]
    fn aiger_headers_with_arbitrary_counts_never_panic(
        binary in any::<bool>(),
        m in any::<u32>(),
        i in any::<u32>(),
        l in 0u32..2,
        o in any::<u32>(),
        a in any::<u32>(),
        body in prop::collection::vec(any::<u8>(), 0..128),
    ) {
        // A syntactically valid header with unconstrained counts in
        // front of random bytes: exercises the overflow and
        // plausibility checks, then whatever body parsing survives.
        let fmt = if binary { "aig" } else { "aag" };
        let mut data = format!("{fmt} {m} {i} {l} {o} {a}\n").into_bytes();
        data.extend_from_slice(&body);
        let _ = aiger::read(&data[..]);
    }

    #[test]
    fn structured_line_soup_never_panics(
        parts in prop::collection::vec(0usize..FRAGMENTS.len(), 0..32),
    ) {
        let text: String = parts.iter().map(|&i| FRAGMENTS[i]).collect();
        feed_all(text.as_bytes());
    }
}

/// Every corpus file is rejected with a clean parse error — these are
/// regression pins for inputs that used to panic (slice out of
/// bounds, u32 overflow) or pre-allocate unbounded memory.
#[test]
fn corpus_files_error_cleanly() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut checked = 0usize;
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("corpus directory exists")
        .map(|e| e.expect("readable entry").path())
        .collect();
    entries.sort();
    for path in entries {
        let bytes = std::fs::read(&path).expect("readable corpus file");
        let ext = path.extension().and_then(|e| e.to_str()).unwrap_or("");
        let res = match ext {
            "aag" | "aig" => aiger::read(&bytes[..]).map(drop),
            "bench" => bench_fmt::read(&bytes[..]).map(drop),
            "blif" => blif::read(&bytes[..]).map(drop),
            other => panic!(
                "unexpected corpus extension {other:?} at {}",
                path.display()
            ),
        };
        let err = res.expect_err(&format!("{} must be rejected", path.display()));
        // Rejections carry a message, not just a unit error.
        assert!(!err.to_string().is_empty());
        // And are reproducible through every reader without a panic.
        feed_all(&bytes);
        checked += 1;
    }
    assert!(
        checked >= 12,
        "expected a full corpus, found {checked} files"
    );
}
