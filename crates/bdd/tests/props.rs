//! Property tests: BDD operations against truth-table semantics, and
//! canonicity (semantic equality ⇔ handle equality).

use proptest::prelude::*;

use simgen_bdd::{Bdd, BddManager};

/// A random expression over `nv` variables, encoded as op codes.
#[derive(Clone, Debug)]
struct ExprSpec {
    nv: usize,
    ops: Vec<(u8, usize, usize)>,
}

fn arb_expr() -> impl Strategy<Value = ExprSpec> {
    (
        1usize..6,
        prop::collection::vec((0u8..5, 0usize..999, 0usize..999), 1..40),
    )
        .prop_map(|(nv, ops)| ExprSpec { nv, ops })
}

/// Builds the expression in the manager and as a semantic bitmask.
fn build(m: &mut BddManager, spec: &ExprSpec) -> (Bdd, u64) {
    let nv = spec.nv;
    let mask = if nv == 6 {
        u64::MAX
    } else {
        (1u64 << (1 << nv)) - 1
    };
    let var_bits = |i: usize| -> u64 {
        let mut bits = 0u64;
        for mnt in 0..(1u64 << nv) {
            if (mnt >> i) & 1 == 1 {
                bits |= 1 << mnt;
            }
        }
        bits
    };
    let mut pool: Vec<(Bdd, u64)> = (0..nv).map(|i| (m.var(i), var_bits(i))).collect();
    for &(op, i, j) in &spec.ops {
        let (fa, ba) = pool[i % pool.len()];
        let (fb, bb) = pool[j % pool.len()];
        let entry = match op {
            0 => (m.and(fa, fb), ba & bb),
            1 => (m.or(fa, fb), ba | bb),
            2 => (m.xor(fa, fb), ba ^ bb),
            3 => (m.not(fa), !ba & mask),
            _ => (m.ite(fa, fb, pool[(i + j) % pool.len()].0), {
                let (_, bc) = pool[(i + j) % pool.len()];
                (ba & bb) | (!ba & bc) & mask
            }),
        };
        pool.push((entry.0, entry.1 & mask));
    }
    *pool.last().expect("nonempty")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn operations_match_semantics(spec in arb_expr()) {
        let mut m = BddManager::new(spec.nv);
        let (f, bits) = build(&mut m, &spec);
        for mnt in 0..(1u64 << spec.nv) {
            let assign: Vec<bool> = (0..spec.nv).map(|i| (mnt >> i) & 1 == 1).collect();
            prop_assert_eq!(m.eval(f, &assign), (bits >> mnt) & 1 == 1, "at {:b}", mnt);
        }
    }

    #[test]
    fn canonicity(spec1 in arb_expr(), ops2 in prop::collection::vec((0u8..5, 0usize..999, 0usize..999), 1..40)) {
        // Build two expressions over the same variables in ONE manager;
        // semantic equality must coincide with handle equality.
        let spec2 = ExprSpec { nv: spec1.nv, ops: ops2 };
        let mut m = BddManager::new(spec1.nv);
        let (f1, b1) = build(&mut m, &spec1);
        let (f2, b2) = build(&mut m, &spec2);
        prop_assert_eq!(f1 == f2, b1 == b2, "handles {:?} {:?} bits {:b} {:b}", f1, f2, b1, b2);
    }

    #[test]
    fn any_sat_and_count_agree(spec in arb_expr()) {
        let mut m = BddManager::new(spec.nv);
        let (f, bits) = build(&mut m, &spec);
        let count = bits.count_ones() as f64;
        prop_assert_eq!(m.sat_count(f), count);
        match m.any_sat(f) {
            Some(assign) => prop_assert!(m.eval(f, &assign)),
            None => prop_assert_eq!(bits, 0),
        }
    }
}
