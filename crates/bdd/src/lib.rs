//! A hash-consed Reduced Ordered Binary Decision Diagram (ROBDD)
//! package — the *other* verification engine of the paper's Figure 2
//! ("the simulator can send these classes to a verification tool like
//! BDD or SAT").
//!
//! The manager keeps one canonical node per `(var, low, high)` triple,
//! so two functions are equivalent **iff** their handles are equal —
//! the property BDD-based equivalence checking (Kuehlmann & Krohm,
//! DAC'97) rests on. Counterexamples fall out of any path to the `1`
//! terminal in the XOR of two functions.
//!
//! # Example
//!
//! ```
//! use simgen_bdd::BddManager;
//!
//! let mut m = BddManager::new(2);
//! let a = m.var(0);
//! let b = m.var(1);
//! let f = m.and(a, b);
//! let na = m.not(a);
//! let nb = m.not(b);
//! let g_inner = m.or(na, nb);
//! let g = m.not(g_inner); // !(!a | !b) == a & b
//! assert_eq!(f, g, "canonical form makes equivalence a pointer check");
//! ```

pub mod manager;
pub mod netbdd;

pub use manager::{Bdd, BddManager};
pub use netbdd::{network_bdds, NetworkBdds};
