//! The ROBDD manager: hash-consed nodes, memoized `ite`, and the
//! standard Boolean operators.

use std::collections::HashMap;

/// Handle to a BDD node (canonical: equal handles ⇔ equal functions).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Bdd(u32);

impl Bdd {
    /// The constant-false function.
    pub const FALSE: Bdd = Bdd(0);
    /// The constant-true function.
    pub const TRUE: Bdd = Bdd(1);

    /// True if this is one of the two terminals.
    pub fn is_const(self) -> bool {
        self.0 < 2
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct Node {
    var: u32,
    low: Bdd,
    high: Bdd,
}

/// A BDD manager over a fixed number of variables with the natural
/// variable order (index 0 at the top).
#[derive(Clone)]
pub struct BddManager {
    num_vars: usize,
    nodes: Vec<Node>,
    unique: HashMap<Node, Bdd>,
    ite_cache: HashMap<(Bdd, Bdd, Bdd), Bdd>,
}

impl std::fmt::Debug for BddManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BddManager")
            .field("num_vars", &self.num_vars)
            .field("nodes", &self.nodes.len())
            .finish()
    }
}

const TERMINAL_VAR: u32 = u32::MAX;

impl BddManager {
    /// Creates a manager for `num_vars` variables.
    pub fn new(num_vars: usize) -> Self {
        let mut m = BddManager {
            num_vars,
            nodes: Vec::new(),
            unique: HashMap::new(),
            ite_cache: HashMap::new(),
        };
        // Slots 0 and 1 are the terminals.
        m.nodes.push(Node {
            var: TERMINAL_VAR,
            low: Bdd::FALSE,
            high: Bdd::FALSE,
        });
        m.nodes.push(Node {
            var: TERMINAL_VAR,
            low: Bdd::TRUE,
            high: Bdd::TRUE,
        });
        m
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Total live nodes (including both terminals).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The projection function of variable `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_vars`.
    pub fn var(&mut self, i: usize) -> Bdd {
        assert!(i < self.num_vars, "variable {i} out of range");
        self.mk(i as u32, Bdd::FALSE, Bdd::TRUE)
    }

    /// A constant function.
    pub fn constant(&self, value: bool) -> Bdd {
        if value {
            Bdd::TRUE
        } else {
            Bdd::FALSE
        }
    }

    fn mk(&mut self, var: u32, low: Bdd, high: Bdd) -> Bdd {
        if low == high {
            return low;
        }
        let node = Node { var, low, high };
        if let Some(&b) = self.unique.get(&node) {
            return b;
        }
        let b = Bdd(self.nodes.len() as u32);
        self.nodes.push(node);
        self.unique.insert(node, b);
        b
    }

    fn var_of(&self, b: Bdd) -> u32 {
        self.nodes[b.0 as usize].var
    }

    fn cofactors(&self, b: Bdd, var: u32) -> (Bdd, Bdd) {
        let n = self.nodes[b.0 as usize];
        if n.var == var {
            (n.low, n.high)
        } else {
            (b, b)
        }
    }

    /// The if-then-else operator — the workhorse all others reduce to.
    pub fn ite(&mut self, f: Bdd, g: Bdd, h: Bdd) -> Bdd {
        // Terminal cases.
        if f == Bdd::TRUE {
            return g;
        }
        if f == Bdd::FALSE {
            return h;
        }
        if g == h {
            return g;
        }
        if g == Bdd::TRUE && h == Bdd::FALSE {
            return f;
        }
        if let Some(&r) = self.ite_cache.get(&(f, g, h)) {
            return r;
        }
        let top = self.var_of(f).min(self.var_of(g)).min(self.var_of(h));
        let (f0, f1) = self.cofactors(f, top);
        let (g0, g1) = self.cofactors(g, top);
        let (h0, h1) = self.cofactors(h, top);
        let low = self.ite(f0, g0, h0);
        let high = self.ite(f1, g1, h1);
        let r = self.mk(top, low, high);
        self.ite_cache.insert((f, g, h), r);
        r
    }

    /// Negation.
    pub fn not(&mut self, f: Bdd) -> Bdd {
        self.ite(f, Bdd::FALSE, Bdd::TRUE)
    }

    /// Conjunction.
    pub fn and(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ite(f, g, Bdd::FALSE)
    }

    /// Disjunction.
    pub fn or(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ite(f, Bdd::TRUE, g)
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let ng = self.not(g);
        self.ite(f, ng, g)
    }

    /// Equivalence (xnor).
    pub fn xnor(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let x = self.xor(f, g);
        self.not(x)
    }

    /// Evaluates the function on a complete assignment.
    pub fn eval(&self, f: Bdd, assignment: &[bool]) -> bool {
        let mut cur = f;
        while !cur.is_const() {
            let n = self.nodes[cur.0 as usize];
            cur = if assignment[n.var as usize] {
                n.high
            } else {
                n.low
            };
        }
        cur == Bdd::TRUE
    }

    /// A satisfying assignment of `f`, if any: unconstrained
    /// variables default to `false`.
    pub fn any_sat(&self, f: Bdd) -> Option<Vec<bool>> {
        if f == Bdd::FALSE {
            return None;
        }
        let mut assignment = vec![false; self.num_vars];
        let mut cur = f;
        while !cur.is_const() {
            let n = self.nodes[cur.0 as usize];
            if n.low != Bdd::FALSE {
                assignment[n.var as usize] = false;
                cur = n.low;
            } else {
                assignment[n.var as usize] = true;
                cur = n.high;
            }
        }
        debug_assert_eq!(cur, Bdd::TRUE);
        Some(assignment)
    }

    /// Number of satisfying assignments of `f` over all variables.
    pub fn sat_count(&self, f: Bdd) -> f64 {
        let mut memo: HashMap<Bdd, f64> = HashMap::new();
        // Fraction of the full space satisfying f, times 2^num_vars.
        fn frac(m: &BddManager, f: Bdd, memo: &mut HashMap<Bdd, f64>) -> f64 {
            if f == Bdd::FALSE {
                return 0.0;
            }
            if f == Bdd::TRUE {
                return 1.0;
            }
            if let Some(&v) = memo.get(&f) {
                return v;
            }
            let n = m.nodes[f.0 as usize];
            let v = 0.5 * frac(m, n.low, memo) + 0.5 * frac(m, n.high, memo);
            memo.insert(f, v);
            v
        }
        frac(self, f, &mut memo) * (self.num_vars as f64).exp2()
    }

    /// Size (reachable node count) of one function's diagram.
    pub fn size(&self, f: Bdd) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f];
        while let Some(b) = stack.pop() {
            if b.is_const() || !seen.insert(b) {
                continue;
            }
            let n = self.nodes[b.0 as usize];
            stack.push(n.low);
            stack.push(n.high);
        }
        seen.len() + 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicity_makes_equivalence_trivial() {
        let mut m = BddManager::new(3);
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        // (a & b) | c  ==  !( (!a | !b) & !c )
        let ab = m.and(a, b);
        let lhs = m.or(ab, c);
        let na = m.not(a);
        let nb = m.not(b);
        let nanb = m.or(na, nb);
        let nc = m.not(c);
        let inner = m.and(nanb, nc);
        let rhs = m.not(inner);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn eval_matches_semantics() {
        let mut m = BddManager::new(3);
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let ab = m.and(a, b);
        let f = m.xor(ab, c);
        for mask in 0..8u32 {
            let assign: Vec<bool> = (0..3).map(|i| (mask >> i) & 1 == 1).collect();
            let expect = (assign[0] && assign[1]) ^ assign[2];
            assert_eq!(m.eval(f, &assign), expect, "at {mask:03b}");
        }
    }

    #[test]
    fn terminals_behave() {
        let mut m = BddManager::new(1);
        assert!(m.eval(Bdd::TRUE, &[false]));
        assert!(!m.eval(Bdd::FALSE, &[false]));
        assert_eq!(m.not(Bdd::TRUE), Bdd::FALSE);
        let a = m.var(0);
        assert_eq!(m.and(a, Bdd::TRUE), a);
        assert_eq!(m.and(a, Bdd::FALSE), Bdd::FALSE);
        assert_eq!(m.or(a, Bdd::FALSE), a);
        let na = m.not(a);
        assert_eq!(m.and(a, na), Bdd::FALSE);
        assert_eq!(m.or(a, na), Bdd::TRUE);
    }

    #[test]
    fn any_sat_finds_witnesses() {
        let mut m = BddManager::new(4);
        let vars: Vec<Bdd> = (0..4).map(|i| m.var(i)).collect();
        // f = x0 & !x1 & x3
        let n1 = m.not(vars[1]);
        let t = m.and(vars[0], n1);
        let f = m.and(t, vars[3]);
        let sat = m.any_sat(f).expect("satisfiable");
        assert!(m.eval(f, &sat));
        assert!(sat[0] && !sat[1] && sat[3]);
        assert_eq!(m.any_sat(Bdd::FALSE), None);
        assert!(m.any_sat(Bdd::TRUE).is_some());
    }

    #[test]
    fn sat_count_is_exact() {
        let mut m = BddManager::new(3);
        let a = m.var(0);
        let b = m.var(1);
        let and = m.and(a, b);
        assert_eq!(m.sat_count(and), 2.0); // {11-}: 2 of 8
        let or = m.or(a, b);
        assert_eq!(m.sat_count(or), 6.0);
        assert_eq!(m.sat_count(Bdd::TRUE), 8.0);
        assert_eq!(m.sat_count(Bdd::FALSE), 0.0);
    }

    #[test]
    fn xor_chain_is_linear_sized() {
        let mut m = BddManager::new(16);
        let mut f = m.constant(false);
        for i in 0..16 {
            let v = m.var(i);
            f = m.xor(f, v);
        }
        // Parity has a 2-nodes-per-level BDD.
        assert!(m.size(f) <= 2 * 16 + 2);
        assert_eq!(m.sat_count(f), (1u64 << 15) as f64);
    }

    #[test]
    fn random_functions_match_brute_force() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let mut m = BddManager::new(4);
            let vars: Vec<Bdd> = (0..4).map(|i| m.var(i)).collect();
            // Random expression tree of depth 4.
            let mut pool = vars.clone();
            for _ in 0..10 {
                let x = pool[rng.gen_range(0..pool.len())];
                let y = pool[rng.gen_range(0..pool.len())];
                let f = match rng.gen_range(0..4) {
                    0 => m.and(x, y),
                    1 => m.or(x, y),
                    2 => m.xor(x, y),
                    _ => m.not(x),
                };
                pool.push(f);
            }
            let f = *pool.last().unwrap();
            let mut count = 0.0;
            for mask in 0..16u32 {
                let assign: Vec<bool> = (0..4).map(|i| (mask >> i) & 1 == 1).collect();
                if m.eval(f, &assign) {
                    count += 1.0;
                }
            }
            assert_eq!(m.sat_count(f), count);
        }
    }
}
