//! Building BDDs for LUT-network nodes — the substrate of BDD-based
//! sweeping: once two nodes' BDDs are built, equivalence is a handle
//! comparison and a counterexample is a path in their XOR.

use simgen_netlist::{LutNetwork, NodeId, NodeKind};

use crate::manager::{Bdd, BddManager};

/// Per-node BDDs of a network, over its PIs as BDD variables.
#[derive(Debug)]
pub struct NetworkBdds {
    /// The shared manager.
    pub manager: BddManager,
    /// `bdds[node.index()]` = the node's function.
    pub bdds: Vec<Bdd>,
}

impl NetworkBdds {
    /// True if two nodes compute the same function (a pointer check,
    /// thanks to canonicity).
    pub fn equivalent(&self, a: NodeId, b: NodeId) -> bool {
        self.bdds[a.index()] == self.bdds[b.index()]
    }

    /// A counterexample input vector on which `a` and `b` differ, or
    /// `None` when they are equivalent.
    pub fn counterexample(&mut self, a: NodeId, b: NodeId) -> Option<Vec<bool>> {
        let fa = self.bdds[a.index()];
        let fb = self.bdds[b.index()];
        let diff = self.manager.xor(fa, fb);
        self.manager.any_sat(diff)
    }
}

/// Builds BDDs for every node of the network, bottom-up.
///
/// Returns `None` when the manager exceeds `node_limit` live nodes —
/// the classic BDD blow-up guard (this is why the field moved to SAT;
/// arithmetic circuits explode).
pub fn network_bdds(net: &LutNetwork, node_limit: usize) -> Option<NetworkBdds> {
    let mut manager = BddManager::new(net.num_pis());
    let mut bdds: Vec<Bdd> = Vec::with_capacity(net.len());
    for id in net.node_ids() {
        let f = match net.kind(id) {
            NodeKind::Pi { index } => manager.var(*index),
            NodeKind::Lut { fanins, tt } => {
                let fanin_bdds: Vec<Bdd> = fanins.iter().map(|f| bdds[f.index()]).collect();
                // OR over the on-set cubes of ANDs of fanin literals.
                let mut acc = manager.constant(false);
                if tt.is_const1() {
                    acc = manager.constant(true);
                } else {
                    for cube in tt.onset_cover() {
                        let mut term = manager.constant(true);
                        for (i, &fb) in fanin_bdds.iter().enumerate() {
                            match cube.input(i) {
                                Some(true) => term = manager.and(term, fb),
                                Some(false) => {
                                    let nf = manager.not(fb);
                                    term = manager.and(term, nf);
                                }
                                None => {}
                            }
                        }
                        acc = manager.or(acc, term);
                    }
                }
                acc
            }
        };
        bdds.push(f);
        if manager.num_nodes() > node_limit {
            return None;
        }
    }
    Some(NetworkBdds { manager, bdds })
}

#[cfg(test)]
mod tests {
    use super::*;
    use simgen_netlist::TruthTable;

    fn redundant_net() -> (LutNetwork, NodeId, NodeId, NodeId) {
        let mut net = LutNetwork::new();
        let a = net.add_pi("a");
        let b = net.add_pi("b");
        let and1 = net.add_lut(vec![a, b], TruthTable::and2()).unwrap();
        let na = net.add_lut(vec![a], TruthTable::not1()).unwrap();
        let nb = net.add_lut(vec![b], TruthTable::not1()).unwrap();
        let nor = net.add_lut(vec![na, nb], TruthTable::or2()).unwrap();
        let and2 = net.add_lut(vec![nor], TruthTable::not1()).unwrap();
        let or = net.add_lut(vec![a, b], TruthTable::or2()).unwrap();
        net.add_po(and1, "x");
        net.add_po(and2, "y");
        net.add_po(or, "z");
        (net, and1, and2, or)
    }

    #[test]
    fn detects_equivalence_and_difference() {
        let (net, and1, and2, or) = redundant_net();
        let mut nb = network_bdds(&net, 1_000_000).expect("tiny network");
        assert!(nb.equivalent(and1, and2));
        assert!(!nb.equivalent(and1, or));
        assert_eq!(nb.counterexample(and1, and2), None);
        let cex = nb.counterexample(and1, or).expect("differ");
        let vals = net.eval(&cex);
        assert_ne!(vals[and1.index()], vals[or.index()]);
    }

    #[test]
    fn bdds_match_network_eval() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut net = LutNetwork::new();
        let mut pool: Vec<NodeId> = (0..5).map(|i| net.add_pi(format!("p{i}"))).collect();
        for _ in 0..25 {
            let k = rng.gen_range(1..=3usize);
            let mut fanins = Vec::new();
            while fanins.len() < k {
                let cand = pool[rng.gen_range(0..pool.len())];
                if !fanins.contains(&cand) {
                    fanins.push(cand);
                }
            }
            let tt = TruthTable::random(fanins.len(), &mut rng);
            pool.push(net.add_lut(fanins, tt).unwrap());
        }
        net.add_po(*pool.last().unwrap(), "f");
        let nb = network_bdds(&net, 1_000_000).expect("small network");
        for m in 0..32u32 {
            let ins: Vec<bool> = (0..5).map(|i| (m >> i) & 1 == 1).collect();
            let vals = net.eval(&ins);
            for id in net.node_ids() {
                assert_eq!(
                    nb.manager.eval(nb.bdds[id.index()], &ins),
                    vals[id.index()],
                    "node {id} at {m:05b}"
                );
            }
        }
    }

    #[test]
    fn node_limit_guards_blowup() {
        // A multiplier's middle bits blow up BDDs; with a tiny limit
        // the builder must bail instead of hanging.
        let mut net = LutNetwork::new();
        let pis: Vec<NodeId> = (0..12).map(|i| net.add_pi(format!("p{i}"))).collect();
        let mut layer = pis.clone();
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(9);
        use rand::Rng;
        for _ in 0..40 {
            let a = layer[rng.gen_range(0..layer.len())];
            let b = layer[rng.gen_range(0..layer.len())];
            if a == b {
                continue;
            }
            let g = net.add_lut(vec![a, b], TruthTable::xor2()).unwrap();
            layer.push(g);
        }
        net.add_po(*layer.last().unwrap(), "f");
        assert!(network_bdds(&net, 10).is_none(), "limit must trigger");
        assert!(network_bdds(&net, 10_000_000).is_some());
    }
}
