//! Offline drop-in subset of the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this crate
//! reimplements the slice of `proptest 1.x` the workspace's property
//! tests use: the [`proptest!`] macro, `prop_assert*`/`prop_assume!`,
//! [`Strategy`](strategy::Strategy) with `prop_map`, range and tuple
//! strategies, [`any`](strategy::any), and `prop::collection::vec`.
//!
//! Unlike upstream there is **no shrinking**: a failing case panics
//! with the assertion message. Cases are generated from a
//! deterministic per-test seed, so failures reproduce exactly.

use rand::rngs::StdRng;

pub mod strategy {
    use super::*;
    use rand::{Rng, SeedableRng};
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A value generator. Unlike upstream there is no value tree:
    /// `new_value` draws a single concrete value.
    pub trait Strategy {
        /// The type of values produced.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates vectors whose elements come from `self` (method
        /// form used by some call sites; see also
        /// [`crate::collection::vec`]).
        fn prop_flat_map<U, S2: Strategy<Value = U>, F: Fn(Self::Value) -> S2>(
            self,
            f: F,
        ) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn new_value(&self, rng: &mut StdRng) -> Self::Value {
            (**self).new_value(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn new_value(&self, rng: &mut StdRng) -> Self::Value {
            (**self).new_value(rng)
        }
    }

    /// [`Strategy::prop_map`] adapter.
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn new_value(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// [`Strategy::prop_flat_map`] adapter.
    #[derive(Clone, Debug)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn new_value(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.inner.new_value(rng)).new_value(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($s:ident/$i:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$i.new_value(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(S0 / 0);
    impl_tuple_strategy!(S0 / 0, S1 / 1);
    impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2);
    impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3);
    impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4);
    impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5);

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.gen::<u64>() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.gen()
        }
    }

    impl<T: Arbitrary> Arbitrary for Option<T> {
        fn arbitrary(rng: &mut StdRng) -> Self {
            if rng.gen() {
                Some(T::arbitrary(rng))
            } else {
                None
            }
        }
    }

    /// The `any::<T>()` strategy.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Unconstrained values of `T` (mirrors `proptest::arbitrary::any`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    /// Builds the deterministic RNG for one test case.
    pub fn case_rng(test_name: &str, case: u64) -> StdRng {
        // FNV-1a over the test name gives a stable per-test stream.
        let mut h = 0xcbf29ce484222325u64;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E3779B97F4A7C15))
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::strategy::Strategy;
    use super::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Length specification for [`vec()`]: an exact size or a range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Vectors with elements from `element` and length from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The strategy returned by [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// `proptest::prelude::prop` namespace.
pub mod prop {
    pub use crate::collection;
}

/// Test-runner plumbing used by the expanded [`proptest!`] macro.
pub mod test_runner {
    /// Per-block configuration (`#![proptest_config(..)]`).
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is retried.
        Reject,
        /// A `prop_assert*` failed; the test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// A failure with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// An input rejection.
        pub fn reject() -> Self {
            TestCaseError::Reject
        }
    }
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ..)`
/// runs `cases` times with freshly drawn arguments.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])+
         fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut passed = 0u32;
                let mut rejected = 0u32;
                let mut draw = 0u64;
                while passed < config.cases {
                    let mut __rng =
                        $crate::strategy::case_rng(stringify!($name), draw);
                    draw += 1;
                    $(
                        let $arg = $crate::strategy::Strategy::new_value(
                            &($strat), &mut __rng);
                    )+
                    let __result: ::std::result::Result<
                        (), $crate::test_runner::TestCaseError,
                    > = (|| { $body ::std::result::Result::Ok(()) })();
                    match __result {
                        Ok(()) => passed += 1,
                        Err($crate::test_runner::TestCaseError::Reject) => {
                            rejected += 1;
                            assert!(
                                rejected < 20 * config.cases + 1000,
                                "prop_assume! rejected too many cases \
                                 ({rejected} rejections for {passed} passes)"
                            );
                        }
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case {} of `{}` failed: {}",
                                draw - 1, stringify!($name), msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case with a message if the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case if the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{:?}` != `{:?}` ({} vs {})",
            __l, __r, stringify!($a), stringify!($b)
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$a, &$b);
        $crate::prop_assert!(__l == __r, $($fmt)+);
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: `{:?}` == `{:?}` ({} vs {})",
            __l, __r, stringify!($a), stringify!($b)
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$a, &$b);
        $crate::prop_assert!(__l != __r, $($fmt)+);
    }};
}

/// Rejects the current case (retried with fresh inputs) if the
/// condition is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject());
        }
    };
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::prop;
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(x in 1usize..10, (a, b) in (0u64..5, 0i32..3)) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(a < 5);
            prop_assert!((0..3).contains(&b));
        }

        #[test]
        fn vec_and_map(v in collection::vec(any::<bool>(), 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
        }

        #[test]
        fn assume_retries(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn mapped_strategy(n in (0u64..8).prop_map(|x| x * 2)) {
            prop_assert!(n % 2 == 0 && n < 16);
            prop_assert_ne!(n, 17);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a: Vec<u64> = (0..4)
            .map(|c| {
                let mut rng = crate::strategy::case_rng("t", c);
                crate::strategy::Strategy::new_value(&(0u64..1000), &mut rng)
            })
            .collect();
        let b: Vec<u64> = (0..4)
            .map(|c| {
                let mut rng = crate::strategy::case_rng("t", c);
                crate::strategy::Strategy::new_value(&(0u64..1000), &mut rng)
            })
            .collect();
        assert_eq!(a, b);
    }
}
