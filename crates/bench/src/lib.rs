//! Experiment harness regenerating every table and figure of the
//! SimGen paper.
//!
//! The binaries in `src/bin/` print the paper's artifacts:
//!
//! | Binary    | Paper artifact |
//! |-----------|----------------|
//! | `table1`  | Table 1 — normalized cost & simulation runtime of the five strategies |
//! | `table2`  | Table 2 — SAT calls and SAT time, RevS vs SimGen (`--stacked` for the lower half) |
//! | `figure5` | Figure 5 — per-benchmark normalized deltas of cost / sim time / SAT calls / SAT time |
//! | `figure6` | Figure 6 — same metrics on the stacked (`&putontop`) benchmarks |
//! | `figure7` | Figure 7 — per-iteration cost/runtime of RandS vs RandS→RevS vs RandS→SimGen |
//!
//! Criterion micro-benches of the underlying kernels live in
//! `benches/`. All runs are seeded and deterministic.

use std::time::Duration;

use simgen_cec::{SweepConfig, SweepReport, Sweeper, SwitchOnPlateau};
use simgen_core::{PatternGenerator, RandomPatterns, RevSim, SimGen, SimGenConfig};
use simgen_netlist::stack::put_on_top;
use simgen_netlist::LutNetwork;
use simgen_workloads::benchmark_network;

pub use simgen_obs::{BenchReport, Json};

/// Writes a bench report to `rel_path`, interpreted relative to the
/// repository root (e.g. `"BENCH_sim.json"` or
/// `"results/BENCH_table1.json"`), and returns the path written.
/// Every `BENCH_*.json` artifact in the workspace goes through this
/// one function so they all share the `simgen-bench-report/2` schema.
pub fn write_bench_report(report: &BenchReport, rel_path: &str) -> std::path::PathBuf {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel_path);
    report.write_to(&path).expect("write bench report");
    path
}

/// Resolves a `--jobs` value using the CLI convention: `0` means
/// auto-detect the available cores (`std::thread::available_parallelism`,
/// falling back to 1 when detection fails).
pub fn resolve_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        jobs
    }
}

/// Parses an optional `--jobs N` / `--jobs=N` from the bench binary's
/// argument vector (cargo forwards everything after `--` to the bench
/// executable). Returns the *resolved* worker count — `--jobs 0`
/// auto-detects, matching the `simgen` CLI — or `None` when the flag
/// is absent.
///
/// # Panics
///
/// Panics with a usage message when the flag is present but its value
/// is missing or not an integer: a bench silently ignoring an explicit
/// `--jobs` would measure the wrong thing.
pub fn jobs_arg() -> Option<usize> {
    let args: Vec<String> = std::env::args().collect();
    let mut iter = args.iter().skip(1);
    while let Some(arg) = iter.next() {
        let raw = if arg == "--jobs" {
            iter.next()
                .unwrap_or_else(|| panic!("--jobs requires a value (0 = auto-detect)"))
                .as_str()
        } else if let Some(rest) = arg.strip_prefix("--jobs=") {
            rest
        } else {
            continue;
        };
        let n: usize = raw
            .parse()
            .unwrap_or_else(|_| panic!("--jobs expects an integer, got {raw:?}"));
        return Some(resolve_jobs(n));
    }
    None
}

/// The pattern-generation strategies the paper compares.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Reverse simulation (the baseline of Zhang et al.).
    RevS,
    /// Simple implication + random decision.
    SiRd,
    /// Advanced implication + random decision.
    AiRd,
    /// Advanced implication + don't-care heuristic.
    AiDc,
    /// Advanced implication + DC + MFFC heuristics (= "SimGen").
    AiDcMffc,
    /// Pure random patterns.
    Random,
}

impl Strategy {
    /// The paper's label for this strategy.
    pub fn label(self) -> &'static str {
        match self {
            Strategy::RevS => "RevS",
            Strategy::SiRd => "SI+RD",
            Strategy::AiRd => "AI+RD",
            Strategy::AiDc => "AI+DC",
            Strategy::AiDcMffc => "AI+DC+MFFC",
            Strategy::Random => "RandS",
        }
    }

    /// The five strategies of Table 1, in column order.
    pub fn table1() -> [Strategy; 5] {
        [
            Strategy::RevS,
            Strategy::SiRd,
            Strategy::AiRd,
            Strategy::AiDc,
            Strategy::AiDcMffc,
        ]
    }
}

/// Number of reverse-simulation pair attempts per iteration.
pub const REVSIM_ATTEMPTS: usize = 30;

/// Builds the pattern generator for a strategy.
pub fn make_generator(strategy: Strategy, seed: u64) -> Box<dyn PatternGenerator> {
    match strategy {
        Strategy::RevS => Box::new(RevSim::new(seed, REVSIM_ATTEMPTS)),
        Strategy::SiRd => Box::new(SimGen::new(SimGenConfig::simple_random().with_seed(seed))),
        Strategy::AiRd => Box::new(SimGen::new(SimGenConfig::advanced_random().with_seed(seed))),
        Strategy::AiDc => Box::new(SimGen::new(SimGenConfig::advanced_dc().with_seed(seed))),
        Strategy::AiDcMffc => Box::new(SimGen::new(
            SimGenConfig::advanced_dc_mffc().with_seed(seed),
        )),
        Strategy::Random => Box::new(RandomPatterns::new(seed, 64)),
    }
}

/// The paper's combined strategy (Section 6.5): random simulation
/// until the cost plateaus for three iterations, then `guided`.
pub fn make_combined(guided: Strategy, seed: u64) -> Box<dyn PatternGenerator> {
    Box::new(SwitchOnPlateau::new(
        Box::new(RandomPatterns::new(seed, 64)),
        make_generator(guided, seed + 1),
        3,
    ))
}

/// Runs one sweep of `net` with the given strategy.
pub fn run_strategy(
    net: &LutNetwork,
    strategy: Strategy,
    cfg: SweepConfig,
    seed: u64,
) -> SweepReport {
    let mut generator = make_generator(strategy, seed);
    Sweeper::new(cfg).run(net, generator.as_mut())
}

/// The experiment-wide sweep configuration (Section 6.1: one round of
/// random simulation, 20 guided iterations).
pub fn experiment_config(run_sat: bool) -> SweepConfig {
    SweepConfig {
        random_rounds: 1,
        random_batch: 64,
        guided_iterations: 20,
        sat_budget: Some(100_000),
        run_sat,
        proof: simgen_cec::ProofEngine::Sat,
        seed: 0xC1C,
        ..SweepConfig::default()
    }
}

/// The stacked benchmarks of Table 2's lower half / Figure 6, with
/// the copy counts the paper annotates.
pub fn stacked_benchmarks() -> [(&'static str, usize); 9] {
    [
        ("alu4", 15),
        ("square", 7),
        ("arbiter", 15),
        ("b15_C2", 8),
        ("b17_C", 5),
        ("b17_C2", 5),
        ("b20_C2", 8),
        ("b21_C2", 8),
        ("b22_C", 6),
    ]
}

/// Builds the `&putontop`-stacked variant of a named benchmark.
pub fn stacked_network(name: &str, copies: usize, k: usize) -> Option<LutNetwork> {
    benchmark_network(name, k).map(|net| put_on_top(&net, copies))
}

/// One benchmark's measured row (both strategies) for Table 2 /
/// Figures 5-6.
#[derive(Clone, Debug)]
pub struct ComparisonRow {
    /// Benchmark name.
    pub name: String,
    /// LUT count of the swept network.
    pub luts: usize,
    /// RevS result.
    pub revs: RowMetrics,
    /// SimGen result.
    pub sgen: RowMetrics,
}

/// The four metrics the paper plots per benchmark.
#[derive(Clone, Copy, Debug, Default)]
pub struct RowMetrics {
    /// Class cost (Equation 5) after the simulation phase.
    pub cost: u64,
    /// Simulation-phase runtime (generation + simulation).
    pub sim_time: Duration,
    /// SAT calls issued.
    pub sat_calls: u64,
    /// SAT runtime.
    pub sat_time: Duration,
}

impl RowMetrics {
    /// Extracts the metrics from a sweep report.
    pub fn from_report(r: &SweepReport) -> Self {
        RowMetrics {
            cost: r.cost_after_sim,
            sim_time: r.stats.total_sim_phase(),
            sat_calls: r.stats.sat_calls,
            sat_time: r.stats.sat_time,
        }
    }
}

/// Sweeps one network with both RevS and SimGen and packages the row.
pub fn compare_on(net: &LutNetwork, name: &str, run_sat: bool, seed: u64) -> ComparisonRow {
    compare_on_avg(net, name, run_sat, seed, 1)
}

/// Like [`compare_on`], averaging every metric over several generator
/// seeds to damp solver and decision noise.
pub fn compare_on_avg(
    net: &LutNetwork,
    name: &str,
    run_sat: bool,
    seed: u64,
    seeds: u64,
) -> ComparisonRow {
    let cfg = experiment_config(run_sat);
    let mut acc = [RowAcc::default(), RowAcc::default()];
    for s in 0..seeds.max(1) {
        for (i, strat) in [Strategy::RevS, Strategy::AiDcMffc].into_iter().enumerate() {
            let m = RowMetrics::from_report(&run_strategy(net, strat, cfg, seed + s));
            acc[i].add(&m);
        }
    }
    ComparisonRow {
        name: name.to_string(),
        luts: net.num_luts(),
        revs: acc[0].mean(seeds.max(1)),
        sgen: acc[1].mean(seeds.max(1)),
    }
}

#[derive(Default)]
struct RowAcc {
    cost: f64,
    sim: f64,
    calls: f64,
    sat: f64,
}

impl RowAcc {
    fn add(&mut self, m: &RowMetrics) {
        self.cost += m.cost as f64;
        self.sim += m.sim_time.as_secs_f64();
        self.calls += m.sat_calls as f64;
        self.sat += m.sat_time.as_secs_f64();
    }

    fn mean(&self, n: u64) -> RowMetrics {
        let n = n as f64;
        RowMetrics {
            cost: (self.cost / n).round() as u64,
            sim_time: Duration::from_secs_f64(self.sim / n),
            sat_calls: (self.calls / n).round() as u64,
            sat_time: Duration::from_secs_f64(self.sat / n),
        }
    }
}

/// Normalized difference `(new − base) / base` guarded against a zero
/// base (returns 0 when both are zero, +1 when only the base is zero).
pub fn norm_diff(new: f64, base: f64) -> f64 {
    if base == 0.0 {
        if new == 0.0 {
            0.0
        } else {
            1.0
        }
    } else {
        (new - base) / base
    }
}

/// Renders a signed percentage as a short ASCII bar (for the figure
/// binaries' terminal plots).
pub fn ascii_bar(frac: f64, width: usize) -> String {
    let mag = (frac.abs() * width as f64).round() as usize;
    let mag = mag.min(width);
    if frac < 0.0 {
        format!("{:>w$}|", "-".repeat(mag), w = width)
    } else {
        format!("{:w$}|{}", "", "+".repeat(mag), w = width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_labels() {
        assert_eq!(Strategy::AiDcMffc.label(), "AI+DC+MFFC");
        assert_eq!(Strategy::table1().len(), 5);
        assert_eq!(Strategy::table1()[0], Strategy::RevS);
    }

    #[test]
    fn generators_match_names() {
        assert_eq!(make_generator(Strategy::RevS, 0).name(), "RevS");
        assert_eq!(make_generator(Strategy::SiRd, 0).name(), "SI+RD");
        assert_eq!(make_generator(Strategy::AiDcMffc, 0).name(), "SimGen");
        assert_eq!(make_generator(Strategy::Random, 0).name(), "RandS");
        assert_eq!(make_combined(Strategy::AiDcMffc, 0).name(), "RandS->SimGen");
    }

    #[test]
    fn norm_diff_guards_zero() {
        assert_eq!(norm_diff(0.0, 0.0), 0.0);
        assert_eq!(norm_diff(5.0, 0.0), 1.0);
        assert!((norm_diff(8.0, 10.0) + 0.2).abs() < 1e-12);
    }

    #[test]
    fn ascii_bar_shapes() {
        assert_eq!(ascii_bar(0.0, 4), "    |");
        assert_eq!(ascii_bar(0.5, 4), "    |++");
        assert_eq!(ascii_bar(-0.5, 4), "  --|");
        assert_eq!(ascii_bar(-2.0, 4), "----|");
    }

    #[test]
    fn stacked_set_matches_paper_annotations() {
        let s = stacked_benchmarks();
        assert_eq!(s.len(), 9);
        assert!(s.contains(&("alu4", 15)));
        assert!(s.contains(&("b17_C", 5)));
    }

    #[test]
    fn small_end_to_end_comparison() {
        let net = benchmark_network("e64", 6).unwrap();
        let row = compare_on(&net, "e64", true, 1);
        assert_eq!(row.name, "e64");
        assert!(row.luts > 0);
        assert!(row.revs.sat_calls > 0);
        assert!(row.sgen.sat_calls > 0);
    }
}
