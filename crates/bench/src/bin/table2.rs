//! Regenerates **Table 2**: per-benchmark SAT calls and SAT time of
//! the sweeping tool under RevS vs SimGen patterns. With `--stacked`,
//! regenerates the lower half (the `&putontop` scaled benchmarks).
//!
//! ```text
//! cargo run --release -p simgen-bench --bin table2 [-- --stacked]
//! ```

use simgen_bench::{
    compare_on_avg, stacked_benchmarks, stacked_network, write_bench_report, BenchReport, Json,
};
use simgen_workloads::{all_benchmarks, benchmark_network};

fn main() {
    let stacked = std::env::args().any(|a| a == "--stacked");
    if stacked {
        println!("Table 2 (lower): SAT calls and SAT time on stacked benchmarks (&putontop)");
    } else {
        println!("Table 2 (upper): SAT calls and SAT time per benchmark");
    }
    println!("(full sweep: 64 random patterns, 20 guided iterations, SAT resolution)");
    println!();
    println!(
        "{:14} {:>7} | {:>9} {:>9} | {:>12} {:>12} | {:>7}",
        "bmk", "luts", "calls", "calls", "time", "time", "dtime"
    );
    println!(
        "{:14} {:>7} | {:>9} {:>9} | {:>12} {:>12} | {:>7}",
        "", "", "RevS", "SGen", "RevS", "SGen", "%"
    );
    println!("{}", "-".repeat(84));

    let rows: Vec<(String, Option<simgen_netlist::LutNetwork>)> = if stacked {
        stacked_benchmarks()
            .iter()
            .map(|&(name, copies)| {
                (
                    format!("{name} ({copies})"),
                    stacked_network(name, copies, 6),
                )
            })
            .collect()
    } else {
        all_benchmarks()
            .iter()
            .map(|b| (b.name.to_string(), benchmark_network(b.name, 6)))
            .collect()
    };

    let mut tot_calls = [0u64; 2];
    let mut tot_time = [0.0f64; 2];
    let mut row_json = Vec::new();
    for (name, net) in rows {
        let net = net.expect("known benchmark");
        let row = compare_on_avg(&net, &name, true, 0xBEEF, 3);
        let tr = row.revs.sat_time.as_secs_f64() * 1e3;
        let ts = row.sgen.sat_time.as_secs_f64() * 1e3;
        let d = if tr > 0.0 {
            (ts - tr) / tr * 100.0
        } else {
            0.0
        };
        println!(
            "{:14} {:>7} | {:>9} {:>9} | {:>10.2}ms {:>10.2}ms | {:>6.1}%",
            row.name, row.luts, row.revs.sat_calls, row.sgen.sat_calls, tr, ts, d
        );
        tot_calls[0] += row.revs.sat_calls;
        tot_calls[1] += row.sgen.sat_calls;
        tot_time[0] += tr;
        tot_time[1] += ts;
        let mut obj = Json::obj();
        obj.push("bmk", Json::Str(row.name.clone()));
        obj.push("luts", Json::U64(row.luts as u64));
        obj.push("revs_sat_calls", Json::U64(row.revs.sat_calls));
        obj.push("simgen_sat_calls", Json::U64(row.sgen.sat_calls));
        obj.push("revs_sat_ms", Json::F64(tr));
        obj.push("simgen_sat_ms", Json::F64(ts));
        row_json.push(obj);
    }
    println!("{}", "-".repeat(84));
    println!(
        "{:14} {:>7} | {:>9} {:>9} | {:>10.2}ms {:>10.2}ms | {:>6.1}%",
        "TOTAL",
        "",
        tot_calls[0],
        tot_calls[1],
        tot_time[0],
        tot_time[1],
        if tot_time[0] > 0.0 {
            (tot_time[1] - tot_time[0]) / tot_time[0] * 100.0
        } else {
            0.0
        }
    );
    println!();
    println!("Paper reference: SimGen reduces SAT calls on the large majority of benchmarks,");
    println!("with SAT time following the call count (e.g. b21_C 1369->271 calls).");

    let mut report = BenchReport::new(if stacked { "table2_stacked" } else { "table2" });
    report.param("stacked", Json::Bool(stacked));
    report.param("seeds", Json::U64(3));
    report.metric("rows", Json::Arr(row_json));
    report.metric("total_revs_sat_calls", Json::U64(tot_calls[0]));
    report.metric("total_simgen_sat_calls", Json::U64(tot_calls[1]));
    report.metric("total_revs_sat_ms", Json::F64(tot_time[0]));
    report.metric("total_simgen_sat_ms", Json::F64(tot_time[1]));
    let rel = if stacked {
        "results/BENCH_table2_stacked.json"
    } else {
        "results/BENCH_table2.json"
    };
    let path = write_bench_report(&report, rel);
    println!("wrote {}", path.display());
}
