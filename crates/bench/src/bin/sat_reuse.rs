//! Warm-vs-cold SAT solving: what the assumption-scoped region
//! solvers buy over a fresh solver per pair (docs/solving.md).
//!
//! Sweeps a multi-region workload twice — once with the default
//! incremental engine policy, once with `--no-incremental` cold
//! solvers — and reports the effort delta. Verdicts are identical by
//! construction (the parity suite pins that); this binary measures
//! the efficiency claim and publishes it as `BENCH_sat.json`.
//!
//! ```text
//! cargo run --release -p simgen-bench --bin sat_reuse [-- --jobs N]
//! ```

use simgen_bench::{jobs_arg, write_bench_report, BenchReport, Json};
use simgen_cec::{Deadline, EnginePolicy, ParallelSweeper, SweepConfig};
use simgen_core::{SimGen, SimGenConfig};
use simgen_mapping::map_to_luts;
use simgen_netlist::{miter::combine, LutNetwork, NodeId};
use simgen_obs::{Counter, Observer};
use simgen_workloads::{build_aig, rewrite::restructure};

/// One benchmark miter'd against its restructured self.
fn miter_of(name: &str, seed: u64) -> LutNetwork {
    let aig = build_aig(name).expect("known benchmark");
    let variant = restructure(&aig, 0.4, seed);
    combine(&map_to_luts(&aig, 6), &map_to_luts(&variant, 6))
        .expect("matched interfaces")
        .network
}

/// Appends `src` into `dst` as a structurally disjoint island, so its
/// cones form a separate fanin region with its own shared solver.
fn append_island(dst: &mut LutNetwork, src: &LutNetwork, tag: &str) {
    let mut map: Vec<Option<NodeId>> = vec![None; src.len()];
    for node in src.node_ids() {
        let new = if src.is_pi(node) {
            dst.add_pi(format!("{tag}_pi{}", node.index()))
        } else {
            let fanins: Vec<NodeId> = src
                .fanins(node)
                .iter()
                .map(|f| map[f.index()].expect("topological order"))
                .collect();
            dst.add_lut(fanins, *src.truth_table(node).expect("LUT"))
                .expect("valid LUT")
        };
        map[node.index()] = Some(new);
    }
    for po in src.pos() {
        dst.add_po(
            map[po.node.index()].expect("driver mapped"),
            format!("{tag}_{}", po.name),
        );
    }
}

struct ModeRow {
    sat_calls: u64,
    sat_ms: f64,
    conflicts: u64,
    learned: u64,
    scopes_opened: u64,
    clauses_reused: u64,
    warm_solves: u64,
}

fn run_mode(net: &LutNetwork, incremental: bool, jobs: usize) -> ModeRow {
    let cfg = SweepConfig {
        guided_iterations: 2,
        seed: 11,
        jobs,
        engine: EnginePolicy {
            incremental,
            ..EnginePolicy::default()
        },
        ..SweepConfig::default()
    };
    let mut gen = SimGen::new(SimGenConfig::default().with_seed(11));
    let mut obs = Observer::enabled();
    let report =
        ParallelSweeper::new(cfg).run_observed(net, &mut gen, &Deadline::never(), &mut obs);
    assert!(!report.interrupted, "workload must run to completion");
    ModeRow {
        sat_calls: report.stats.sat_calls,
        sat_ms: report.stats.sat_time.as_secs_f64() * 1e3,
        conflicts: report.stats.solver.conflicts,
        learned: report.stats.solver.learned,
        scopes_opened: obs.recorder.get(Counter::ScopesOpened),
        clauses_reused: obs.recorder.get(Counter::ClausesReused),
        warm_solves: obs.recorder.get(Counter::WarmSolves),
    }
}

fn main() {
    let jobs = jobs_arg().unwrap_or(2);
    let mut net = miter_of("e64", 11);
    let second = miter_of("dec", 37);
    append_island(&mut net, &second, "dec");

    println!("Warm (incremental region solvers) vs cold (fresh solver per pair),");
    println!("two disjoint benchmark miters, jobs={jobs}:\n");
    let warm = run_mode(&net, true, jobs);
    let cold = run_mode(&net, false, jobs);

    println!(
        "{:>16} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "mode", "SAT calls", "SAT ms", "conflicts", "learned", "reused"
    );
    for (label, row) in [("warm", &warm), ("cold", &cold)] {
        println!(
            "{label:>16} {:>12} {:>12.2} {:>12} {:>12} {:>12}",
            row.sat_calls, row.sat_ms, row.conflicts, row.learned, row.clauses_reused
        );
    }
    let saved = cold.conflicts.saturating_sub(warm.conflicts);
    let frac = if cold.conflicts > 0 {
        saved as f64 / cold.conflicts as f64
    } else {
        0.0
    };
    println!(
        "\nwarm solves {} / {} scopes; conflicts saved {saved} ({:.1}%)",
        warm.warm_solves,
        warm.scopes_opened,
        frac * 100.0
    );

    let mut report = BenchReport::new("sat_reuse");
    report.param("workload", Json::Str("e64+dec miters (disjoint)".into()));
    report.param("luts", Json::U64(net.num_luts() as u64));
    report.param("jobs", Json::U64(jobs as u64));
    report.param("seed", Json::U64(11));
    for (label, row) in [("warm", &warm), ("cold", &cold)] {
        report.metric(&format!("{label}_sat_calls"), Json::U64(row.sat_calls));
        report.metric(&format!("{label}_sat_ms"), Json::F64(row.sat_ms));
        report.metric(&format!("{label}_conflicts"), Json::U64(row.conflicts));
        report.metric(&format!("{label}_learned"), Json::U64(row.learned));
    }
    report.metric("scopes_opened", Json::U64(warm.scopes_opened));
    report.metric("clauses_reused", Json::U64(warm.clauses_reused));
    report.metric("warm_solves", Json::U64(warm.warm_solves));
    report.metric("conflicts_saved", Json::U64(saved));
    report.metric("conflicts_saved_frac", Json::F64(frac));
    let path = write_bench_report(&report, "BENCH_sat.json");
    println!("wrote {}", path.display());
}
