//! Regenerates **Figure 6**: the Figure 5 metrics on the stacked
//! (`&putontop`) benchmarks of Section 6.4, demonstrating that
//! SimGen's advantages scale with circuit complexity.
//!
//! ```text
//! cargo run --release -p simgen-bench --bin figure6
//! ```

use simgen_bench::{
    ascii_bar, compare_on_avg, norm_diff, stacked_benchmarks, stacked_network, write_bench_report,
    BenchReport, Json,
};

fn main() {
    println!("Figure 6: normalized difference (SimGen - RevS) / RevS, stacked benchmarks");
    println!("bars: '-' left of axis = SimGen lower (better); '+' = SimGen higher");
    println!();
    println!(
        "{:14} {:>7} {:<17} {:>7} {:<17} {:>7} {:<17} {:>7} {:<17}",
        "bmk", "cost%", "", "sim%", "", "calls%", "", "sat%", ""
    );
    let mut sums = [0.0f64; 4];
    let mut n = 0usize;
    let mut row_json = Vec::new();
    for (name, copies) in stacked_benchmarks() {
        let net = stacked_network(name, copies, 6).expect("known benchmark");
        let label = format!("{name} ({copies})");
        let row = compare_on_avg(&net, &label, true, 0xBEEF, 3);
        let d = [
            norm_diff(row.sgen.cost as f64, row.revs.cost as f64),
            norm_diff(
                row.sgen.sim_time.as_secs_f64(),
                row.revs.sim_time.as_secs_f64(),
            ),
            norm_diff(row.sgen.sat_calls as f64, row.revs.sat_calls as f64),
            norm_diff(
                row.sgen.sat_time.as_secs_f64(),
                row.revs.sat_time.as_secs_f64(),
            ),
        ];
        println!(
            "{:14} {:>6.1}% {:<17} {:>6.1}% {:<17} {:>6.1}% {:<17} {:>6.1}% {:<17}",
            row.name,
            d[0] * 100.0,
            ascii_bar(d[0], 8),
            d[1] * 100.0,
            ascii_bar(d[1].min(8.0) / 8.0, 8),
            d[2] * 100.0,
            ascii_bar(d[2], 8),
            d[3] * 100.0,
            ascii_bar(d[3], 8),
        );
        for (s, v) in sums.iter_mut().zip(d) {
            *s += v;
        }
        n += 1;
        let mut obj = Json::obj();
        obj.push("bmk", Json::Str(row.name.clone()));
        obj.push("cost_diff", Json::F64(d[0]));
        obj.push("sim_time_diff", Json::F64(d[1]));
        obj.push("sat_calls_diff", Json::F64(d[2]));
        obj.push("sat_time_diff", Json::F64(d[3]));
        row_json.push(obj);
    }
    println!();
    println!(
        "averages over {n} stacked benchmarks: cost {:+.1}%, sim time {:+.1}%, sat calls {:+.1}%, sat time {:+.1}%",
        sums[0] / n as f64 * 100.0,
        sums[1] / n as f64 * 100.0,
        sums[2] / n as f64 * 100.0,
        sums[3] / n as f64 * 100.0
    );
    println!();
    println!("Paper reference (Figure 6): the Figure 5 trends persist at scale — SimGen");
    println!("keeps reducing SAT calls and runtime with an occasional simulation-time cost.");

    let mut report = BenchReport::new("figure6");
    report.param("stacked_benchmarks", Json::U64(n as u64));
    report.param("seeds", Json::U64(3));
    report.metric("rows", Json::Arr(row_json));
    report.metric("avg_cost_diff", Json::F64(sums[0] / n as f64));
    report.metric("avg_sim_time_diff", Json::F64(sums[1] / n as f64));
    report.metric("avg_sat_calls_diff", Json::F64(sums[2] / n as f64));
    report.metric("avg_sat_time_diff", Json::F64(sums[3] / n as f64));
    let path = write_bench_report(&report, "results/BENCH_figure6.json");
    println!("wrote {}", path.display());
}
