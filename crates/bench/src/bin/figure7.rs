//! Regenerates **Figure 7**: per-iteration cost and cumulative
//! simulation runtime of three strategies on `apex2` and `cps`:
//! pure random simulation (RandS), RandS switching to RevS on a cost
//! plateau, and RandS switching to SimGen (the paper's Section 6.5
//! synergy experiment; the switch fires after 3 stagnant iterations).
//!
//! ```text
//! cargo run --release -p simgen-bench --bin figure7
//! ```

use simgen_bench::{
    experiment_config, make_combined, make_generator, write_bench_report, BenchReport, Json,
    Strategy,
};
use simgen_cec::{SweepConfig, Sweeper};
use simgen_core::PatternGenerator;
use simgen_workloads::benchmark_network;

fn main() {
    let cfg = SweepConfig {
        guided_iterations: 30,
        run_sat: false,
        ..experiment_config(false)
    };
    let mut report = BenchReport::new("figure7");
    report.param("guided_iterations", Json::U64(30));
    for bmk in ["apex2", "cps"] {
        let net = benchmark_network(bmk, 6).expect("known benchmark");
        println!("=== {bmk} ({} luts) ===", net.num_luts());
        println!(
            "{:>4} | {:>10} {:>12} | {:>10} {:>12} | {:>10} {:>12}",
            "iter", "RandS", "ms(cum)", "R->RevS", "ms(cum)", "R->SimGen", "ms(cum)"
        );
        let mut gens: Vec<Box<dyn PatternGenerator>> = vec![
            make_generator(Strategy::Random, 7),
            make_combined(Strategy::RevS, 7),
            make_combined(Strategy::AiDcMffc, 7),
        ];
        let reports: Vec<_> = gens
            .iter_mut()
            .map(|g| Sweeper::new(cfg).run(&net, g.as_mut()))
            .collect();
        let iters = reports[0].stats.history.len();
        let mut cum = [0.0f64; 3];
        for it in 0..iters {
            print!("{:>4} |", it);
            for (k, r) in reports.iter().enumerate() {
                let rec = &r.stats.history[it];
                cum[k] += (rec.gen_time + rec.sim_time).as_secs_f64() * 1e3;
                print!(" {:>10} {:>12.3} |", rec.cost, cum[k]);
            }
            println!();
        }
        let final_costs: Vec<u64> = reports
            .iter()
            .map(|r| r.stats.history.last().map_or(0, |rec| rec.cost))
            .collect();
        println!(
            "final costs: RandS {}, RandS->RevS {}, RandS->SimGen {}",
            final_costs[0], final_costs[1], final_costs[2]
        );
        println!();
        for (label, r) in ["rands", "rands_revs", "rands_simgen"]
            .into_iter()
            .zip(&reports)
        {
            report.metric(
                &format!("{bmk}_{label}_cost_curve"),
                Json::Arr(
                    r.stats
                        .history
                        .iter()
                        .map(|rec| Json::U64(rec.cost))
                        .collect(),
                ),
            );
            report.metric(
                &format!("{bmk}_{label}_final_cost"),
                Json::U64(r.stats.history.last().map_or(0, |rec| rec.cost)),
            );
        }
    }
    println!("Paper reference (Figure 7): RandS plateaus after a few iterations; switching");
    println!("to SimGen keeps splitting classes (lowest final cost) at extra runtime, with");
    println!("RevS in between.");
    let path = write_bench_report(&report, "results/BENCH_figure7.json");
    println!("wrote {}", path.display());
}
