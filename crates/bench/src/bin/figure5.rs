//! Regenerates **Figure 5**: per-benchmark normalized differences of
//! SimGen vs RevS in class cost, simulation runtime, SAT calls and
//! SAT runtime, rendered as aligned ASCII bars (negative = SimGen
//! better, matching the paper's bar plot).
//!
//! ```text
//! cargo run --release -p simgen-bench --bin figure5
//! ```

use simgen_bench::{ascii_bar, compare_on_avg, norm_diff, write_bench_report, BenchReport, Json};
use simgen_workloads::{all_benchmarks, benchmark_network};

fn main() {
    println!("Figure 5: normalized difference (SimGen - RevS) / RevS per benchmark");
    println!("bars: '-' left of axis = SimGen lower (better); '+' = SimGen higher");
    println!();
    println!(
        "{:12} {:>7} {:<17} {:>7} {:<17} {:>7} {:<17} {:>7} {:<17}",
        "bmk", "cost%", "", "sim%", "", "calls%", "", "sat%", ""
    );
    let mut sums = [0.0f64; 4];
    let mut n = 0usize;
    let mut row_json = Vec::new();
    for b in all_benchmarks() {
        let net = benchmark_network(b.name, 6).expect("known benchmark");
        let row = compare_on_avg(&net, b.name, true, 0xBEEF, 3);
        let d = [
            norm_diff(row.sgen.cost as f64, row.revs.cost as f64),
            norm_diff(
                row.sgen.sim_time.as_secs_f64(),
                row.revs.sim_time.as_secs_f64(),
            ),
            norm_diff(row.sgen.sat_calls as f64, row.revs.sat_calls as f64),
            norm_diff(
                row.sgen.sat_time.as_secs_f64(),
                row.revs.sat_time.as_secs_f64(),
            ),
        ];
        println!(
            "{:12} {:>6.1}% {:<17} {:>6.1}% {:<17} {:>6.1}% {:<17} {:>6.1}% {:<17}",
            row.name,
            d[0] * 100.0,
            ascii_bar(d[0], 8),
            d[1] * 100.0,
            ascii_bar(d[1].min(8.0) / 8.0, 8),
            d[2] * 100.0,
            ascii_bar(d[2], 8),
            d[3] * 100.0,
            ascii_bar(d[3], 8),
        );
        for (s, v) in sums.iter_mut().zip(d) {
            *s += v;
        }
        n += 1;
        let mut obj = Json::obj();
        obj.push("bmk", Json::Str(row.name.clone()));
        obj.push("cost_diff", Json::F64(d[0]));
        obj.push("sim_time_diff", Json::F64(d[1]));
        obj.push("sat_calls_diff", Json::F64(d[2]));
        obj.push("sat_time_diff", Json::F64(d[3]));
        row_json.push(obj);
    }
    println!();
    println!(
        "averages over {n} benchmarks: cost {:+.1}%, sim time {:+.1}%, sat calls {:+.1}%, sat time {:+.1}%",
        sums[0] / n as f64 * 100.0,
        sums[1] / n as f64 * 100.0,
        sums[2] / n as f64 * 100.0,
        sums[3] / n as f64 * 100.0
    );
    println!();
    println!("Paper reference (Figure 5): cost, SAT calls and SAT runtime drop on most");
    println!("benchmarks; simulation runtime occasionally increases (the accepted tradeoff).");

    let mut report = BenchReport::new("figure5");
    report.param("benchmarks", Json::U64(n as u64));
    report.param("seeds", Json::U64(3));
    report.metric("rows", Json::Arr(row_json));
    report.metric("avg_cost_diff", Json::F64(sums[0] / n as f64));
    report.metric("avg_sim_time_diff", Json::F64(sums[1] / n as f64));
    report.metric("avg_sat_calls_diff", Json::F64(sums[2] / n as f64));
    report.metric("avg_sat_time_diff", Json::F64(sums[3] / n as f64));
    let path = write_bench_report(&report, "results/BENCH_figure5.json");
    println!("wrote {}", path.display());
}
