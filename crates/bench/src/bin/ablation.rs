//! Ablations of SimGen's design choices beyond the paper's Table 1:
//!
//! 1. α/β sensitivity of the row-priority blend (Equation 4);
//! 2. OUTgold policy: alternating (paper default) vs topology-aware
//!    (the extension the paper proposes in Section 3);
//! 3. SimGen's per-iteration class-attempt budget;
//! 4. RevS's pair-retry budget (baseline fairness check);
//! 5. extra strategies: the 1-distance counterexample perturbation of
//!    Mishchenko et al. alongside RandS / RevS / SimGen.
//!
//! ```text
//! cargo run --release -p simgen-bench --bin ablation
//! ```

use simgen_bench::{experiment_config, write_bench_report, BenchReport, Json, REVSIM_ATTEMPTS};
use simgen_cec::{ProofEngine, SweepConfig, Sweeper};
use simgen_core::{OneDistance, PatternGenerator, RandomPatterns, RevSim, SimGen, SimGenConfig};
use simgen_workloads::benchmark_network;

const BENCHES: [&str; 6] = ["apex2", "k2", "cps", "b17_C", "b21_C", "i10"];

fn avg_cost(mut make: impl FnMut(u64) -> Box<dyn PatternGenerator>, run_sat: bool) -> (f64, f64) {
    let cfg = experiment_config(run_sat);
    let mut cost = 0.0;
    let mut calls = 0.0;
    for name in BENCHES {
        let net = benchmark_network(name, 6).expect("known benchmark");
        for seed in 0..2u64 {
            let mut gen = make(seed);
            let r = Sweeper::new(cfg).run(&net, gen.as_mut());
            cost += r.cost_after_sim as f64;
            calls += r.stats.sat_calls as f64;
        }
    }
    let n = (BENCHES.len() * 2) as f64;
    (cost / n, calls / n)
}

fn main() {
    println!("Ablations over {BENCHES:?} (2 seeds each, cost = Eq.5 after sim phase)\n");
    let mut report = BenchReport::new("ablation");
    report.param(
        "benchmarks",
        Json::Arr(BENCHES.iter().map(|b| Json::Str(b.to_string())).collect()),
    );
    report.param("seeds", Json::U64(2));

    println!("1. Equation 4 priority weights (AI+DC+MFFC):");
    println!("{:>8} {:>8} {:>12}", "alpha", "beta", "avg cost");
    for (alpha, beta) in [
        (0.0, 0.0),   // pure roulette over uniform weights
        (0.0, 1.0),   // MFFC rank only
        (1.0, 0.0),   // DC count only
        (1.0, 1.0),   // equal blend
        (100.0, 1.0), // the paper's alpha >> beta
        (1000.0, 1.0),
    ] {
        let (cost, _) = avg_cost(
            |seed| {
                let mut cfg = SimGenConfig::advanced_dc_mffc().with_seed(seed);
                cfg.alpha = alpha;
                cfg.beta = beta;
                Box::new(SimGen::new(cfg))
            },
            false,
        );
        println!("{alpha:>8} {beta:>8} {cost:>12.1}");
        report.metric(
            &format!("eq4_alpha{alpha}_beta{beta}_avg_cost"),
            Json::F64(cost),
        );
    }

    println!("\n2. OUTgold policy:");
    for (label, topo) in [("alternating", false), ("topology-aware", true)] {
        let (cost, _) = avg_cost(
            |seed| {
                let mut cfg = SimGenConfig::default().with_seed(seed);
                if topo {
                    cfg = cfg.with_topology_aware_outgold();
                }
                Box::new(SimGen::new(cfg))
            },
            false,
        );
        println!("{label:>16}: avg cost {cost:.1}");
        report.metric(
            &format!("outgold_{}_avg_cost", label.replace('-', "_")),
            Json::F64(cost),
        );
    }

    println!("\n3. SimGen class attempts per iteration:");
    for attempts in [1usize, 2, 4, 8, 16] {
        let (cost, _) = avg_cost(
            |seed| {
                let mut g = SimGen::new(SimGenConfig::default().with_seed(seed));
                g.max_attempts = attempts;
                Box::new(g)
            },
            false,
        );
        println!("{attempts:>16}: avg cost {cost:.1}");
        report.metric(
            &format!("simgen_attempts{attempts}_avg_cost"),
            Json::F64(cost),
        );
    }

    println!("\n4. RevS pair-retry budget:");
    for attempts in [5usize, REVSIM_ATTEMPTS, 100] {
        let (cost, _) = avg_cost(|seed| Box::new(RevSim::new(seed, attempts)), false);
        println!("{attempts:>16}: avg cost {cost:.1}");
        report.metric(
            &format!("revs_attempts{attempts}_avg_cost"),
            Json::F64(cost),
        );
    }

    println!("\n5. Strategy roundup (full sweep incl. SAT; note RandS emits 64 vectors");
    println!("   per iteration vs <=1 for guided strategies - volume, not guidance):");
    println!(
        "{:>16} {:>12} {:>12}",
        "strategy", "avg cost", "avg SAT calls"
    );
    type GenCtor = Box<dyn Fn(u64) -> Box<dyn PatternGenerator>>;
    let entries: [(&str, GenCtor); 4] = [
        ("RandS", Box::new(|s| Box::new(RandomPatterns::new(s, 64)))),
        ("1-dist", Box::new(|s| Box::new(OneDistance::new(s, 8)))),
        (
            "RevS",
            Box::new(|s| Box::new(RevSim::new(s, REVSIM_ATTEMPTS))),
        ),
        (
            "SimGen",
            Box::new(|s| Box::new(SimGen::new(SimGenConfig::default().with_seed(s)))),
        ),
    ];
    for (label, make) in entries {
        let (cost, calls) = avg_cost(|s| make(s), true);
        println!("{label:>16} {cost:>12.1} {calls:>12.1}");
        let key = label.to_ascii_lowercase().replace('-', "_");
        report.metric(&format!("strategy_{key}_avg_cost"), Json::F64(cost));
        report.metric(&format!("strategy_{key}_avg_sat_calls"), Json::F64(calls));
    }

    println!("\n6. Proof engine (SimGen patterns; resolution time per benchmark):");
    println!(
        "{:>10} {:>12} {:>12} {:>12}",
        "bmk", "SAT ms", "BDD ms", "BDD result"
    );
    for name in BENCHES {
        let net = benchmark_network(name, 6).expect("known benchmark");
        let mut row = Vec::new();
        let mut bdd_note = "ok";
        for engine in [
            ProofEngine::Sat,
            ProofEngine::Bdd {
                node_limit: 2_000_000,
            },
        ] {
            let cfg = SweepConfig {
                proof: engine,
                ..experiment_config(true)
            };
            let mut gen = SimGen::new(SimGenConfig::default());
            let r = Sweeper::new(cfg).run(&net, &mut gen);
            row.push(r.stats.sat_time.as_secs_f64() * 1e3);
            if matches!(engine, ProofEngine::Bdd { .. }) && r.stats.aborted > 0 {
                bdd_note = "blow-up";
            }
        }
        println!(
            "{name:>10} {:>12.2} {:>12.2} {bdd_note:>12}",
            row[0], row[1]
        );
        report.metric(&format!("{name}_sat_ms"), Json::F64(row[0]));
        report.metric(&format!("{name}_bdd_ms"), Json::F64(row[1]));
        report.metric(
            &format!("{name}_bdd_result"),
            Json::Str(bdd_note.to_string()),
        );
    }
    let path = write_bench_report(&report, "results/BENCH_ablation.json");
    println!("wrote {}", path.display());
}
