//! Regenerates **Table 1**: average normalized class cost and
//! simulation runtime of the five pattern-generation strategies over
//! the 42 benchmarks, relative to reverse simulation.
//!
//! ```text
//! cargo run --release -p simgen-bench --bin table1 [-- --verbose] [--seeds N]
//! ```

use simgen_bench::{
    experiment_config, run_strategy, write_bench_report, BenchReport, Json, Strategy,
};
use simgen_workloads::{all_benchmarks, benchmark_network};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let verbose = args.iter().any(|a| a == "--verbose");
    let seeds: u64 = match args.iter().position(|a| a == "--seeds") {
        None => 3,
        Some(i) => match args.get(i + 1).and_then(|s| s.parse().ok()) {
            Some(n) if n >= 1 => n,
            _ => {
                eprintln!("bad --seeds value (need a positive integer)");
                std::process::exit(64);
            }
        },
    };
    let cfg = experiment_config(false);
    let strategies = Strategy::table1();

    println!("Table 1: normalized cost and simulation runtime vs RevS");
    println!("(1 round of 64 random patterns, then 20 guided iterations; no SAT phase)");
    println!();
    if verbose {
        println!(
            "{:10} {:>8} {:>8} {:>8} {:>8} {:>8}   {:>8} {:>8} {:>8} {:>8} {:>8}",
            "bmk",
            "RevS",
            "SI+RD",
            "AI+RD",
            "AI+DC",
            "AI+MFFC",
            "t_RevS",
            "t_SIRD",
            "t_AIRD",
            "t_AIDC",
            "t_MFFC"
        );
    }

    // Per-strategy accumulators of per-benchmark normalized values.
    let mut cost_ratios = vec![Vec::new(); strategies.len()];
    let mut time_ratios = vec![Vec::new(); strategies.len()];
    let mut used = 0usize;
    let mut skipped = Vec::new();

    for b in all_benchmarks() {
        let net = benchmark_network(b.name, 6).expect("known benchmark");
        // Average each strategy's metrics over several generator seeds
        // to smooth out the randomness in decisions and pair picking.
        let mut costs = vec![0.0f64; strategies.len()];
        let mut times = vec![0.0f64; strategies.len()];
        for seed in 0..seeds {
            for (i, &s) in strategies.iter().enumerate() {
                let r = run_strategy(&net, s, cfg, 0xBEEF + seed);
                costs[i] += r.cost_after_sim as f64 / seeds as f64;
                times[i] += r.stats.total_sim_phase().as_secs_f64() / seeds as f64;
            }
        }
        let base_cost = costs[0];
        let base_time = times[0];
        if verbose {
            print!("{:10}", b.name);
            for c in &costs {
                print!(" {:>8.1}", c);
            }
            print!("  ");
            for t in &times {
                print!(" {:>8.2}", t * 1e3);
            }
            println!();
        }
        // The paper omits benchmarks whose sweeping runtime is
        // negligible; we analogously skip those whose baseline cost is
        // zero (nothing left to split — every ratio would be 0/0).
        if base_cost == 0.0 {
            skipped.push(b.name);
            continue;
        }
        used += 1;
        for i in 0..strategies.len() {
            cost_ratios[i].push(costs[i] / base_cost);
            time_ratios[i].push(times[i] / base_time.max(1e-9));
        }
    }

    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!();
    print!("{:22}", "");
    for s in strategies {
        print!(" {:>11}", s.label());
    }
    println!();
    print!("{:22}", "Cost");
    let mffc_cost = avg(&cost_ratios[strategies.len() - 1]);
    for r in &cost_ratios {
        print!(" {:>11.3}", avg(r));
    }
    println!("   ({:+.1}%)", (mffc_cost - 1.0) * 100.0);
    print!("{:22}", "Simulation Runtime");
    let mffc_time = avg(&time_ratios[strategies.len() - 1]);
    for r in &time_ratios {
        print!(" {:>11.3}", avg(r));
    }
    println!("   ({:+.1}%)", (mffc_time - 1.0) * 100.0);
    println!();
    println!(
        "{used} benchmarks averaged over {seeds} seeds; skipped (baseline cost 0): {}",
        if skipped.is_empty() {
            "none".to_string()
        } else {
            skipped.join(", ")
        }
    );
    println!();
    println!("Paper reference (Table 1): cost 1.000 / 0.814 / 0.812 / 0.810 / 0.807 (-19.3%),");
    println!("sim runtime 1.000 / 1.204 / 1.263 / 1.262 / 1.130 (+13.0%).");

    let mut report = BenchReport::new("table1");
    report.param("seeds", Json::U64(seeds));
    report.param("benchmarks_used", Json::U64(used as u64));
    report.param(
        "skipped",
        Json::Arr(skipped.iter().map(|s| Json::Str(s.to_string())).collect()),
    );
    for (i, s) in strategies.iter().enumerate() {
        let key = s.label().to_ascii_lowercase().replace('+', "_");
        report.metric(
            &format!("cost_ratio_{key}"),
            Json::F64(avg(&cost_ratios[i])),
        );
        report.metric(
            &format!("time_ratio_{key}"),
            Json::F64(avg(&time_ratios[i])),
        );
    }
    let path = write_bench_report(&report, "results/BENCH_table1.json");
    println!("wrote {}", path.display());
}
