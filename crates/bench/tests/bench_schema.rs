//! Schema validation of the committed `BENCH_sim.json` artifact.
//!
//! The bench artifacts at the repository root are part of the perf
//! trajectory — CI diffs them across commits — so their shape is held
//! to the `simgen-bench-report/2` schema here, including the scaling
//! and SIMD metrics version 2 introduced. If `sim_throughput` ever
//! stops emitting a field this test names, the regression is caught
//! at test time, not when a CI diff silently loses a column.

use simgen_bench::{BenchReport, Json};

fn load_bench_sim() -> Json {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_sim.json");
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    Json::parse(&text).expect("BENCH_sim.json parses as JSON")
}

#[test]
fn bench_sim_validates_against_schema() {
    let json = load_bench_sim();
    BenchReport::validate(&json).expect("BENCH_sim.json is schema-valid");
    assert_eq!(
        json.get("name").and_then(Json::as_str),
        Some("sim_throughput")
    );
}

#[test]
fn bench_sim_has_scaling_and_simd_metrics() {
    let json = load_bench_sim();
    let metrics = json.get("metrics").expect("metrics object");
    for key in [
        "interpreter_patterns_per_sec",
        "compiled_patterns_per_sec",
        "compiled_jobs2_patterns_per_sec",
        "compiled_jobs4_patterns_per_sec",
        "compiled_jobs8_patterns_per_sec",
        "scaling_efficiency_jobs2",
        "scaling_efficiency_jobs4",
        "scaling_efficiency_jobs8",
        "cone_restricted_patterns_per_sec",
        "compiled_vs_interpreter_speedup",
        "simd_speedup",
    ] {
        let value = metrics
            .get(key)
            .unwrap_or_else(|| panic!("missing metric {key}"));
        assert!(
            value.as_f64().is_some() || value.as_u64().is_some(),
            "metric {key} is not a number"
        );
    }
    let width = metrics
        .get("simd_width")
        .and_then(Json::as_u64)
        .expect("simd_width is a u64");
    assert!(
        [64, 256, 512].contains(&width),
        "simd_width {width} is not a supported lane width"
    );
    let cores = json
        .get("params")
        .and_then(|p| p.get("cores"))
        .and_then(Json::as_u64)
        .expect("params.cores is a u64");
    assert!(cores >= 1);
}
