//! Criterion harness behind **Table 2**: measures the *full sweep*
//! (simulation phase plus SAT resolution) under RevS vs SimGen
//! patterns on representative benchmarks — the end-to-end time whose
//! SAT component the paper tabulates. One stacked benchmark covers
//! the table's lower half (Section 6.4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use simgen_bench::{experiment_config, run_strategy, stacked_network, Strategy};
use simgen_workloads::benchmark_network;

fn bench_table2(c: &mut Criterion) {
    let cfg = experiment_config(true);
    let mut group = c.benchmark_group("table2_full_sweep");
    for bmk in ["apex2", "b21_C"] {
        let net = benchmark_network(bmk, 6).expect("known benchmark");
        for strategy in [Strategy::RevS, Strategy::AiDcMffc] {
            let r = run_strategy(&net, strategy, cfg, 1);
            println!(
                "{bmk}/{}: {} SAT calls, {:?} SAT time",
                strategy.label(),
                r.stats.sat_calls,
                r.stats.sat_time
            );
            group.bench_with_input(
                BenchmarkId::new(bmk, strategy.label()),
                &strategy,
                |b, &strategy| {
                    b.iter(|| run_strategy(&net, strategy, cfg, 1).stats.sat_calls);
                },
            );
        }
    }
    group.finish();

    let mut group = c.benchmark_group("table2_stacked");
    group.sample_size(10);
    let net = stacked_network("square", 7, 6).expect("known benchmark");
    for strategy in [Strategy::RevS, Strategy::AiDcMffc] {
        group.bench_with_input(
            BenchmarkId::new("square_x7", strategy.label()),
            &strategy,
            |b, &strategy| {
                b.iter(|| run_strategy(&net, strategy, cfg, 1).stats.sat_calls);
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table2
}
criterion_main!(benches);
