//! Benchmarks of the substrate layers: bit-parallel simulation,
//! class refinement, LUT mapping, cut enumeration, MFFC computation
//! and SAT proving — the infrastructure every experiment rides on.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use simgen_cec::PairProver;
use simgen_mapping::{enumerate_cuts, map_to_luts};
use simgen_netlist::mffc::{mffc, reference_counts};
use simgen_netlist::NodeId;
use simgen_sim::{simulate, EquivClasses, PatternSet, SimResult};
use simgen_workloads::{benchmark_network, build_aig};

fn bench_simulation(c: &mut Criterion) {
    let net = benchmark_network("pdc", 6).expect("known benchmark");
    let mut rng = StdRng::seed_from_u64(1);
    let patterns = PatternSet::random(net.num_pis(), 256, &mut rng);
    let mut group = c.benchmark_group("simulation");
    group.bench_function("word_parallel_256_patterns", |b| {
        b.iter(|| simulate(&net, &patterns));
    });
    group.bench_function("incremental_single_pattern", |b| {
        let mut sim = SimResult::empty(&net);
        sim.extend_patterns(&net, &patterns);
        let v = patterns.vector(0);
        b.iter(|| {
            let mut s = sim.clone();
            s.push_pattern(&net, &v);
            s.num_patterns()
        });
    });
    group.bench_function("class_partition", |b| {
        let sim = simulate(&net, &patterns);
        b.iter(|| EquivClasses::initial(&net, &sim).cost());
    });
    group.finish();
}

fn bench_mapping(c: &mut Criterion) {
    let aig = build_aig("apex3").expect("known benchmark");
    let mut group = c.benchmark_group("mapping");
    group.bench_function("enumerate_cuts_k6", |b| {
        b.iter(|| enumerate_cuts(&aig, 6, 8).len());
    });
    group.bench_function("map_to_luts_k6", |b| {
        b.iter(|| map_to_luts(&aig, 6).num_luts());
    });
    group.finish();
}

fn bench_mffc(c: &mut Criterion) {
    let net = benchmark_network("i10", 6).expect("known benchmark");
    let luts: Vec<NodeId> = net.node_ids().filter(|&n| !net.is_pi(n)).collect();
    c.bench_function("mffc_all_nodes", |b| {
        b.iter(|| {
            let mut refs = reference_counts(&net);
            luts.iter()
                .map(|&n| mffc(&net, n, &mut refs).size())
                .sum::<usize>()
        });
    });
}

fn bench_sat_prove(c: &mut Criterion) {
    // Prove equivalence of the deepest same-signature pair of a
    // combined original/restructured instance.
    let inst = simgen_workloads::cec_instance("e64", 6).expect("known benchmark");
    let net = inst.combined;
    let mut rng = StdRng::seed_from_u64(2);
    let patterns = PatternSet::random(net.num_pis(), 64, &mut rng);
    let sim = simulate(&net, &patterns);
    let classes = EquivClasses::initial(&net, &sim);
    let class = classes
        .classes()
        .iter()
        .max_by_key(|c| net.level(c[0]))
        .expect("classes exist")
        .clone();
    c.bench_function("sat_prove_pair", |b| {
        b.iter(|| {
            let mut prover = PairProver::new(&net);
            prover.prove(class[0], class[1], None)
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_simulation, bench_mapping, bench_mffc, bench_sat_prove
}
criterion_main!(benches);
