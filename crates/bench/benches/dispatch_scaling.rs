//! Scaling of the parallel proof-dispatch engine: the same sweep run
//! at `--jobs` 1, 2, 4 and 8 on 42-suite circuits miter'd against
//! restructured variants of themselves. The proof outcomes are
//! identical at every worker count (the dispatch engine is
//! scheduling-invariant), so any wall-time difference is pure
//! parallel speedup of the SAT-resolution phase.
//!
//! Accepts `--jobs N` after `cargo bench ... --` (0 = auto-detect,
//! the CLI convention); the resolved count joins the default 1/2/4/8
//! sweep when not already in it.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use simgen_bench::{jobs_arg, write_bench_report, BenchReport, Json};
use simgen_cec::{BudgetSchedule, ParallelSweeper, SweepConfig};
use simgen_core::{SimGen, SimGenConfig};
use simgen_mapping::map_to_luts;
use simgen_netlist::LutNetwork;
use simgen_workloads::{build_aig, rewrite::restructure};

/// A benchmark miter'd against a restructured copy of itself — the
/// standard sweep workload with many provable candidate pairs.
fn workload(name: &str, seed: u64) -> LutNetwork {
    let aig = build_aig(name).expect("known benchmark");
    let variant = restructure(&aig, 0.5, seed);
    let left = map_to_luts(&aig, 6);
    let right = map_to_luts(&variant, 6);
    simgen_netlist::miter::combine(&left, &right)
        .expect("matched interfaces")
        .network
}

fn sweep_config(jobs: usize) -> SweepConfig {
    SweepConfig {
        // A short guided phase leaves plenty of candidate pairs for
        // the proof phase — the part that parallelises.
        guided_iterations: 2,
        jobs,
        budget_schedule: Some(BudgetSchedule::default()),
        seed: 0xD15,
        ..SweepConfig::default()
    }
}

fn run_once(net: &LutNetwork, jobs: usize) -> u64 {
    let mut gen = SimGen::new(SimGenConfig::default().with_seed(1));
    let report = ParallelSweeper::new(sweep_config(jobs)).run(net, &mut gen);
    report.stats.proved_equivalent
}

fn bench_dispatch_scaling(c: &mut Criterion) {
    let mut sweep = vec![1usize, 2, 4, 8];
    if let Some(jobs) = jobs_arg() {
        if !sweep.contains(&jobs) {
            sweep.push(jobs);
            sweep.sort_unstable();
        }
    }
    let mut report = BenchReport::new("dispatch_scaling");
    report.param("benchmarks", Json::Str("e64, alu4".to_string()));
    report.param("guided_iterations", Json::U64(2));
    let mut group = c.benchmark_group("dispatch_scaling");
    group.sample_size(10);
    for name in ["e64", "alu4"] {
        let net = workload(name, 99);
        // One-shot wall-clock summary (the headline speedup number)
        // before the statistically sampled runs.
        let mut serial_time = None;
        for &jobs in &sweep {
            let t = Instant::now();
            let proved = run_once(&net, jobs);
            let elapsed = t.elapsed();
            let speedup = serial_time.get_or_insert(elapsed).as_secs_f64() / elapsed.as_secs_f64();
            println!("{name}: jobs={jobs} {elapsed:?} ({proved} proved, {speedup:.2}x vs j=1)");
            report.metric(
                &format!("{name}_jobs{jobs}_ms"),
                Json::F64(elapsed.as_secs_f64() * 1e3),
            );
            report.metric(&format!("{name}_jobs{jobs}_speedup"), Json::F64(speedup));
        }
        for &jobs in &sweep {
            group.bench_with_input(BenchmarkId::new(name, jobs), &jobs, |b, &jobs| {
                b.iter(|| run_once(&net, jobs));
            });
        }
    }
    group.finish();
    let path = write_bench_report(&report, "BENCH_dispatch.json");
    println!("dispatch_scaling: wrote {}", path.display());
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_dispatch_scaling
}
criterion_main!(benches);
