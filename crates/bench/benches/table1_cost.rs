//! Criterion harness behind **Table 1**: measures the simulation
//! phase (pattern generation + simulation + class refinement, no SAT)
//! of each strategy on representative benchmarks, and reports the
//! achieved class cost alongside the timing in the bench output.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use simgen_bench::{experiment_config, run_strategy, Strategy};
use simgen_workloads::benchmark_network;

fn bench_table1(c: &mut Criterion) {
    let cfg = experiment_config(false);
    let mut group = c.benchmark_group("table1_sim_phase");
    for bmk in ["apex2", "k2", "b17_C"] {
        let net = benchmark_network(bmk, 6).expect("known benchmark");
        for strategy in Strategy::table1() {
            // Print the cost once so bench logs double as data points.
            let cost = run_strategy(&net, strategy, cfg, 1).cost_after_sim;
            println!("{bmk}/{}: cost {cost}", strategy.label());
            group.bench_with_input(
                BenchmarkId::new(bmk, strategy.label()),
                &strategy,
                |b, &strategy| {
                    b.iter(|| run_strategy(&net, strategy, cfg, 1).cost_after_sim);
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table1
}
criterion_main!(benches);
