//! Micro-benchmarks of SimGen's inner kernels: implication passes,
//! decision steps, reverse-simulation attempts and whole-vector
//! generation — the operations whose cost Table 1's "simulation
//! runtime" column aggregates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use simgen_core::engine::InputVectorGenerator;
use simgen_core::implication::propagate;
use simgen_core::revsim::reverse_simulate;
use simgen_core::rows::RowDb;
use simgen_core::{DecisionStrategy, ImplicationStrategy, Value, ValueMap};
use simgen_netlist::{LutNetwork, NodeId};
use simgen_workloads::benchmark_network;

fn deep_targets(net: &LutNetwork, count: usize) -> Vec<NodeId> {
    let mut luts: Vec<NodeId> = net.node_ids().filter(|&n| !net.is_pi(n)).collect();
    luts.sort_by_key(|&n| std::cmp::Reverse(net.level(n)));
    luts.truncate(count);
    luts
}

fn bench_implication(c: &mut Criterion) {
    let net = benchmark_network("apex2", 6).expect("known benchmark");
    let targets = deep_targets(&net, 8);
    let mut group = c.benchmark_group("implication");
    for strategy in [ImplicationStrategy::Simple, ImplicationStrategy::Advanced] {
        group.bench_with_input(
            BenchmarkId::new("propagate_from_target", format!("{strategy:?}")),
            &strategy,
            |b, &strategy| {
                let mut rows = RowDb::new();
                b.iter(|| {
                    let mut total = 0usize;
                    for &t in &targets {
                        let mut values = ValueMap::new(net.len());
                        values.assign(t, Value::One);
                        if let simgen_core::implication::Propagation::Quiescent(n) =
                            propagate(&net, &mut values, &mut rows, &[t], strategy)
                        {
                            total += n;
                        }
                    }
                    total
                });
            },
        );
    }
    group.finish();
}

fn bench_vector_generation(c: &mut Criterion) {
    let net = benchmark_network("apex2", 6).expect("known benchmark");
    let targets = deep_targets(&net, 6);
    let golds: Vec<(NodeId, bool)> = targets
        .iter()
        .enumerate()
        .map(|(i, &n)| (n, i % 2 == 1))
        .collect();
    let mut group = c.benchmark_group("vector_generation");
    for (label, imp, dec) in [
        (
            "SI+RD",
            ImplicationStrategy::Simple,
            DecisionStrategy::Random,
        ),
        (
            "AI+RD",
            ImplicationStrategy::Advanced,
            DecisionStrategy::Random,
        ),
        ("AI+DC", ImplicationStrategy::Advanced, DecisionStrategy::Dc),
        (
            "AI+DC+MFFC",
            ImplicationStrategy::Advanced,
            DecisionStrategy::DcMffc,
        ),
    ] {
        group.bench_function(label, |b| {
            let mut engine = InputVectorGenerator::new(&net);
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| engine.generate(&golds, imp, dec, 100.0, 1.0, &mut rng));
        });
    }
    group.bench_function("RevS_pair_attempt", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| reverse_simulate(&net, (targets[0], targets[1]), &mut rng));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_implication, bench_vector_generation
}
criterion_main!(benches);
