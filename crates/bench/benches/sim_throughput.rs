//! Simulation throughput: compiled opcode kernels vs the original
//! cube-cover interpreter, plus the parallel and cone-restricted
//! paths, on a >10k-node random LUT network.
//!
//! Besides the criterion samples, the bench writes a one-shot summary
//! to `BENCH_sim.json` at the repository root (schema
//! `simgen-bench-report/2`): patterns/second for every mode, the
//! headline compiled-vs-interpreter speedup, per-`jobs` scaling
//! efficiency (speedup over jobs=1 divided by `min(jobs, cores)`, so
//! 1.0 is perfect scaling and oversubscribed runs are not penalized
//! for lacking cores), and the single-thread SIMD speedup of the
//! widest supported kernel over the forced-scalar 64-bit path.
//!
//! Accepts `--jobs N` after `cargo bench ... --` (0 = auto-detect,
//! the CLI convention); the resolved count is added to the benched
//! worker sweep when it is not already part of the default 1/2/4/8.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use simgen_bench::{jobs_arg, write_bench_report, BenchReport, Json};
use simgen_netlist::{LutNetwork, NodeId, TruthTable};
use simgen_sim::{
    active_simd_level, reference_lanes, CompiledNet, PatternSet, SimResult, SimdLevel,
};

const NUM_LUTS: usize = 12_000;
const NUM_PIS: usize = 64;
const NUM_PATTERNS: usize = 4_096;
/// Roughly 5% of the nodes act as still-active sweep roots in the
/// cone-restricted mode.
const CONE_ROOT_STRIDE: usize = 20;

/// Deterministic random network: 12k LUTs of arity 1–6 over a pool
/// biased toward recent nodes (so depth grows and the Shannon tape
/// path is exercised alongside the fused fast paths).
fn big_net(seed: u64) -> LutNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = LutNetwork::new();
    let mut pool: Vec<NodeId> = (0..NUM_PIS).map(|i| net.add_pi(format!("p{i}"))).collect();
    for _ in 0..NUM_LUTS {
        let arity = rng.gen_range(1..=6usize);
        let mut fanins: Vec<NodeId> = Vec::with_capacity(arity);
        while fanins.len() < arity {
            // Bias toward the most recent quarter of the pool.
            let lo = if rng.gen_bool(0.5) {
                pool.len() - (pool.len() / 4).max(1)
            } else {
                0
            };
            let cand = pool[rng.gen_range(lo..pool.len())];
            if !fanins.contains(&cand) {
                fanins.push(cand);
            }
        }
        let arity = fanins.len();
        let tt = TruthTable::from_bits(arity, rng.gen()).expect("arity <= 6");
        pool.push(net.add_lut(fanins, tt).expect("topological"));
    }
    net.add_po(*pool.last().unwrap(), "f");
    net
}

/// Fastest of `reps` runs, as patterns per second.
fn best_pps<F: FnMut()>(reps: usize, patterns: usize, mut f: F) -> f64 {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed());
    }
    patterns as f64 / best.as_secs_f64()
}

/// The default parallel sweep, possibly extended by a `--jobs` flag.
fn jobs_sweep() -> Vec<usize> {
    let mut sweep = vec![2usize, 4, 8];
    if let Some(jobs) = jobs_arg() {
        if jobs != 1 && !sweep.contains(&jobs) {
            sweep.push(jobs);
            sweep.sort_unstable();
        }
    }
    sweep
}

fn write_summary(net: &LutNetwork, pats: &PatternSet) {
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let base = SimResult::empty(net); // compile once, outside timing
    let interp = best_pps(3, NUM_PATTERNS, || {
        std::hint::black_box(reference_lanes(net, pats));
    });
    let compiled = best_pps(5, NUM_PATTERNS, || {
        let mut s = base.clone();
        s.extend_patterns_jobs(net, pats, 1);
        std::hint::black_box(&s);
    });
    // The kernel caps its fan-out at the execution resources that
    // exist (pool workers + the helping caller), so two `jobs` values
    // clamping to the same effective worker count run byte-identical
    // schedules. Measure each distinct effective count once and share
    // the number — re-timing identical configurations would only
    // report scheduler noise as fake (anti-)scaling.
    let mut parallel: Vec<(usize, f64)> = Vec::new();
    let mut measured: Vec<(usize, f64)> = vec![(1, compiled)];
    for jobs in jobs_sweep() {
        let effective = jobs.min(cores);
        let pps = match measured.iter().find(|(e, _)| *e == effective) {
            Some(&(_, pps)) => pps,
            None => {
                let pps = best_pps(5, NUM_PATTERNS, || {
                    let mut s = base.clone();
                    s.extend_patterns_jobs(net, pats, jobs);
                    std::hint::black_box(&s);
                });
                measured.push((effective, pps));
                pps
            }
        };
        parallel.push((jobs, pps));
    }
    let roots: Vec<NodeId> = net
        .node_ids()
        .filter(|n| !net.is_pi(*n))
        .step_by(CONE_ROOT_STRIDE)
        .collect();
    let cone = best_pps(5, NUM_PATTERNS, || {
        let mut s = base.clone();
        s.extend_patterns_cone(net, pats, &roots, 1);
        std::hint::black_box(&s);
    });

    // Single-thread SIMD speedup: the same compiled kernel over the
    // full node order at the detected level vs pinned to scalar.
    let kernel = CompiledNet::compile(net);
    let order: Vec<NodeId> = net.node_ids().collect();
    let level = active_simd_level();
    let scalar_pps = best_pps(9, NUM_PATTERNS, || {
        std::hint::black_box(kernel.simulate_lanes_at(pats, &order, 1, SimdLevel::Scalar));
    });
    let wide_pps = best_pps(9, NUM_PATTERNS, || {
        std::hint::black_box(kernel.simulate_lanes_at(pats, &order, 1, level));
    });
    let simd_speedup = wide_pps / scalar_pps;

    let speedup = compiled / interp;
    let mut report = BenchReport::new("sim_throughput");
    report.param("nodes", Json::U64(net.len() as u64));
    report.param("patterns", Json::U64(NUM_PATTERNS as u64));
    report.param("cone_restricted_roots", Json::U64(roots.len() as u64));
    report.param("cores", Json::U64(cores as u64));
    report.metric("interpreter_patterns_per_sec", Json::F64(interp));
    report.metric("compiled_patterns_per_sec", Json::F64(compiled));
    for (jobs, pps) in &parallel {
        report.metric(
            &format!("compiled_jobs{jobs}_patterns_per_sec"),
            Json::F64(*pps),
        );
    }
    // Efficiency vs jobs=1, normalized by the workers that can really
    // run: on a machine with fewer cores than `jobs` the ideal
    // speedup is `cores`, not `jobs`.
    for (jobs, pps) in &parallel {
        report.metric(
            &format!("scaling_efficiency_jobs{jobs}"),
            Json::F64((pps / compiled) / (*jobs).min(cores).max(1) as f64),
        );
    }
    report.metric("cone_restricted_patterns_per_sec", Json::F64(cone));
    report.metric("compiled_vs_interpreter_speedup", Json::F64(speedup));
    report.metric("simd_width", Json::U64(level.width_bits() as u64));
    report.metric("simd_speedup", Json::F64(simd_speedup));
    let path = write_bench_report(&report, "BENCH_sim.json");
    println!(
        "sim_throughput: compiled {speedup:.2}x vs interpreter; wrote {}",
        path.display()
    );
    print!("{}", report.to_pretty());
}

fn bench_sim_throughput(c: &mut Criterion) {
    let net = big_net(0x51B);
    let mut rng = StdRng::seed_from_u64(7);
    let pats = PatternSet::random(net.num_pis(), NUM_PATTERNS, &mut rng);

    write_summary(&net, &pats);

    let base = SimResult::empty(&net);
    let mut group = c.benchmark_group("sim_throughput");
    group.sample_size(10);
    group.bench_function("interpreter", |b| {
        b.iter(|| std::hint::black_box(reference_lanes(&net, &pats)))
    });
    let mut sweep = vec![1usize];
    sweep.extend(jobs_sweep());
    for jobs in sweep {
        group.bench_with_input(BenchmarkId::new("compiled", jobs), &jobs, |b, &jobs| {
            b.iter(|| {
                let mut s = base.clone();
                s.extend_patterns_jobs(&net, &pats, jobs);
                s
            })
        });
    }
    let roots: Vec<NodeId> = net
        .node_ids()
        .filter(|n| !net.is_pi(*n))
        .step_by(CONE_ROOT_STRIDE)
        .collect();
    group.bench_function("cone_restricted", |b| {
        b.iter(|| {
            let mut s = base.clone();
            s.extend_patterns_cone(&net, &pats, &roots, 1);
            s
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sim_throughput
}
criterion_main!(benches);
