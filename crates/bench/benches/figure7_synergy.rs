//! Criterion harness behind **Figure 7**: the random→guided synergy
//! strategies on `apex2` and `cps`. Measures one whole simulation
//! phase per strategy (RandS, RandS→RevS, RandS→SimGen) and prints
//! final costs so the bench log mirrors the figure's endpoints.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use simgen_bench::{experiment_config, make_combined, make_generator, Strategy};
use simgen_cec::Sweeper;
use simgen_workloads::benchmark_network;

fn bench_figure7(c: &mut Criterion) {
    let cfg = experiment_config(false);
    let mut group = c.benchmark_group("figure7_strategies");
    for bmk in ["apex2", "cps"] {
        let net = benchmark_network(bmk, 6).expect("known benchmark");
        type GenCtor = fn(u64) -> Box<dyn simgen_core::PatternGenerator>;
        let variants: [(&str, GenCtor); 3] = [
            ("RandS", |s| make_generator(Strategy::Random, s)),
            ("RandS->RevS", |s| make_combined(Strategy::RevS, s)),
            ("RandS->SimGen", |s| make_combined(Strategy::AiDcMffc, s)),
        ];
        for (label, make) in variants {
            let mut gen = make(7);
            let r = Sweeper::new(cfg).run(&net, gen.as_mut());
            println!("{bmk}/{label}: final cost {}", r.cost_after_sim);
            group.bench_with_input(BenchmarkId::new(bmk, label), &(), |b, ()| {
                b.iter(|| {
                    let mut gen = make(7);
                    Sweeper::new(cfg).run(&net, gen.as_mut()).cost_after_sim
                });
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_figure7
}
criterion_main!(benches);
