//! Parallel proof dispatch: a work-stealing scheduler for candidate
//! equivalence pairs, plus the budget-escalation policy that decides
//! how much SAT effort each pair receives before falling back to BDDs.
//!
//! The crate is deliberately domain-agnostic: the executor runs any
//! `Fn(&mut State, Job) -> Result` over a job list and returns results
//! **in input order**, so a sweeping layer built on top produces
//! identical output regardless of worker count or scheduling. Worker
//! state (`State`) is where callers keep their per-worker SAT solver
//! and BDD fallback; [`BudgetSchedule`] prices the retries.
//!
//! Determinism contract: everything about the returned
//! [`DispatchOutcome::results`] is a pure function of the job list —
//! only the per-worker execution/steal counters depend on scheduling.
//!
//! Resilience contract: a panicking step quarantines only its own job
//! ([`JobStatus::Panicked`]; the worker respawns and keeps going), and
//! an expired [`Deadline`] stops new jobs from starting
//! ([`JobStatus::Skipped`]) while the [`Watchdog`] interrupts whatever
//! is already in flight through the shared flag.

mod deadline;
mod executor;
mod fair;
#[cfg(feature = "fault-inject")]
pub mod fault;
mod policy;
mod pool;
mod schedule;

pub use deadline::{Deadline, Progress, Watchdog};
pub use executor::{run_ordered, run_ordered_traced, DispatchOutcome, JobStatus, WorkerReport};
pub use fair::{FairQueue, Popped, PushError, DEFAULT_PRIORITY, MAX_PRIORITY};
#[cfg(feature = "fault-inject")]
pub use fault::{FaultAction, FaultPlan};
pub use policy::{EngineMode, EnginePolicy};
pub use pool::{shared_pool, Scope, WorkerPool};
pub use schedule::{Attempt, BudgetSchedule, Escalation};
