//! Parallel proof dispatch: a work-stealing scheduler for candidate
//! equivalence pairs, plus the budget-escalation policy that decides
//! how much SAT effort each pair receives before falling back to BDDs.
//!
//! The crate is deliberately domain-agnostic: the executor runs any
//! `Fn(&mut State, Job) -> Result` over a job list and returns results
//! **in input order**, so a sweeping layer built on top produces
//! identical output regardless of worker count or scheduling. Worker
//! state (`State`) is where callers keep their per-worker SAT solver
//! and BDD fallback; [`BudgetSchedule`] prices the retries.
//!
//! Determinism contract: everything about the returned
//! [`DispatchOutcome::results`] is a pure function of the job list —
//! only the per-worker execution/steal counters depend on scheduling.

mod executor;
mod schedule;

pub use executor::{run_ordered, DispatchOutcome, WorkerReport};
pub use schedule::{Attempt, BudgetSchedule, Escalation};
