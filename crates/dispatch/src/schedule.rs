//! Budget escalation: how much proof effort a pair receives.
//!
//! A pair proof starts with a small conflict budget (most pairs are
//! easy — either quickly UNSAT or quickly SAT), and only the hard
//! stragglers earn multiplied retries. Pairs that exhaust the whole
//! SAT ladder may fall back to a BDD engine, guarded by a node limit
//! so arithmetic cones cannot blow the heap.

/// The escalation ladder for one pair proof.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BudgetSchedule {
    /// Conflict budget of the first SAT attempt.
    pub initial: u64,
    /// Budget multiplier applied on each retry.
    pub multiplier: u64,
    /// Total SAT attempts (including the first) before giving up on
    /// the solver.
    pub attempts: u32,
    /// Node limit for the BDD fallback tried after the SAT ladder is
    /// exhausted; `0` disables the fallback.
    pub bdd_node_limit: usize,
}

impl Default for BudgetSchedule {
    fn default() -> Self {
        BudgetSchedule {
            initial: 1_000,
            multiplier: 10,
            attempts: 3,
            bdd_node_limit: 0,
        }
    }
}

/// One attempt's result, fed back into [`BudgetSchedule::run`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Attempt<T> {
    /// The attempt produced a definitive answer.
    Resolved(T),
    /// The attempt hit its budget after spending `conflicts`
    /// conflicts.
    Undecided {
        /// Conflicts the aborted attempt consumed.
        conflicts: u64,
    },
}

/// Accumulated record of one pair's trip up the ladder.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Escalation<T> {
    /// The definitive answer, or `None` if every rung was exhausted.
    pub outcome: Option<T>,
    /// SAT attempts performed.
    pub attempts: u32,
    /// Retries beyond the first attempt (the "escalations" metric).
    pub escalations: u32,
    /// Total conflicts spent across the aborted attempts.
    pub conflicts: u64,
}

impl BudgetSchedule {
    /// The conflict budget of the `attempt`-th try (0-based),
    /// saturating on overflow.
    pub fn budget(&self, attempt: u32) -> u64 {
        let mut b = self.initial.max(1);
        for _ in 0..attempt {
            b = b.saturating_mul(self.multiplier.max(1));
        }
        b
    }

    /// Drives `try_once` up the ladder: each call receives the next
    /// budget; the loop stops at the first [`Attempt::Resolved`] or
    /// after [`BudgetSchedule::attempts`] undecided tries.
    ///
    /// The BDD fallback is *not* run here — the caller owns the BDD
    /// engine and consults [`BudgetSchedule::bdd_node_limit`] when
    /// `outcome` comes back `None`.
    pub fn run<T>(&self, mut try_once: impl FnMut(u64) -> Attempt<T>) -> Escalation<T> {
        let mut conflicts = 0u64;
        let rungs = self.attempts.max(1);
        for attempt in 0..rungs {
            match try_once(self.budget(attempt)) {
                Attempt::Resolved(t) => {
                    return Escalation {
                        outcome: Some(t),
                        attempts: attempt + 1,
                        escalations: attempt,
                        conflicts,
                    }
                }
                Attempt::Undecided { conflicts: c } => conflicts += c,
            }
        }
        Escalation {
            outcome: None,
            attempts: rungs,
            escalations: rungs - 1,
            conflicts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_multiply() {
        let s = BudgetSchedule {
            initial: 100,
            multiplier: 10,
            attempts: 3,
            bdd_node_limit: 0,
        };
        assert_eq!(s.budget(0), 100);
        assert_eq!(s.budget(1), 1_000);
        assert_eq!(s.budget(2), 10_000);
    }

    #[test]
    fn budget_saturates() {
        let s = BudgetSchedule {
            initial: u64::MAX / 2,
            multiplier: 4,
            attempts: 2,
            bdd_node_limit: 0,
        };
        assert_eq!(s.budget(5), u64::MAX);
    }

    #[test]
    fn degenerate_schedule_still_tries_once() {
        let s = BudgetSchedule {
            initial: 0,
            multiplier: 0,
            attempts: 0,
            bdd_node_limit: 0,
        };
        // Zeroes are clamped: one attempt with budget 1.
        let mut budgets = Vec::new();
        let e = s.run(|b| -> Attempt<()> {
            budgets.push(b);
            Attempt::Undecided { conflicts: 1 }
        });
        assert_eq!(budgets, vec![1]);
        assert_eq!(e.outcome, None);
        assert_eq!(e.attempts, 1);
        assert_eq!(e.escalations, 0);
        assert_eq!(e.conflicts, 1);
    }

    #[test]
    fn resolves_on_later_rung() {
        let s = BudgetSchedule {
            initial: 10,
            multiplier: 2,
            attempts: 4,
            bdd_node_limit: 0,
        };
        let mut seen = Vec::new();
        let e = s.run(|b| {
            seen.push(b);
            if b >= 40 {
                Attempt::Resolved("done")
            } else {
                Attempt::Undecided { conflicts: b }
            }
        });
        assert_eq!(seen, vec![10, 20, 40]);
        assert_eq!(e.outcome, Some("done"));
        assert_eq!(e.attempts, 3);
        assert_eq!(e.escalations, 2);
        // Conflicts only from the two aborted tries.
        assert_eq!(e.conflicts, 30);
    }

    #[test]
    fn exhausted_ladder_reports_totals() {
        let s = BudgetSchedule {
            initial: 5,
            multiplier: 3,
            attempts: 3,
            bdd_node_limit: 1_000,
        };
        let e = s.run(|_| -> Attempt<()> { Attempt::Undecided { conflicts: 2 } });
        assert_eq!(e.outcome, None);
        assert_eq!(e.attempts, 3);
        assert_eq!(e.escalations, 2);
        assert_eq!(e.conflicts, 6);
        assert_eq!(s.bdd_node_limit, 1_000);
    }
}
