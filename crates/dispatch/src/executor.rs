//! The work-stealing executor.
//!
//! Jobs are dealt round-robin into per-worker deques. A worker pops
//! from the *front* of its own deque (cache-friendly FIFO over its
//! shard) and, when dry, steals from the *back* of a victim's deque —
//! the classic owner/thief split that keeps contention on opposite
//! ends. No work is ever created after launch, so a worker may exit
//! as soon as one full scan over every deque comes up empty.
//!
//! Results carry their input index and are re-assembled in input
//! order before returning, which is what makes a sweep built on top
//! scheduling-invariant.
//!
//! Two failure modes are absorbed rather than propagated:
//!
//! * A `step` that **panics** poisons only its own job: the panic is
//!   caught, the job is reported as [`JobStatus::Panicked`], the
//!   worker's state is rebuilt with a fresh `init(w)` (the old state
//!   may be mid-mutation and cannot be trusted), and the worker keeps
//!   draining jobs.
//! * An expired **deadline** stops workers from *starting* new jobs;
//!   everything not yet begun comes back as [`JobStatus::Skipped`].
//!   In-flight jobs are interrupted through the deadline's shared
//!   flag, not killed, so their results are still sound.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

use simgen_obs::{Json, Trace};

use crate::deadline::Deadline;

/// Per-job outcome of a dispatch run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobStatus<R> {
    /// The step ran to completion.
    Done(R),
    /// The step panicked; the job is quarantined and the worker was
    /// respawned with fresh state.
    Panicked {
        /// Panic payload rendered as text (best effort).
        message: String,
    },
    /// The deadline expired before any worker started this job.
    Skipped,
}

impl<R> JobStatus<R> {
    /// The result, if the job completed.
    pub fn done(self) -> Option<R> {
        match self {
            JobStatus::Done(r) => Some(r),
            _ => None,
        }
    }

    /// True if the job completed.
    pub fn is_done(&self) -> bool {
        matches!(self, JobStatus::Done(_))
    }
}

/// What one worker did, plus its final caller-owned state (where the
/// sweeping layer keeps per-worker provers and proof counters).
#[derive(Clone, Debug)]
pub struct WorkerReport<S> {
    /// Worker index in `0..jobs`.
    pub worker: usize,
    /// Jobs this worker executed (completed or panicked).
    pub executed: u64,
    /// Jobs this worker stole from other workers' deques.
    pub stolen: u64,
    /// Jobs whose step panicked on this worker (each one also cost a
    /// state respawn).
    pub panics: u64,
    /// Final worker state.
    pub state: S,
}

/// Everything a dispatch run produces.
#[derive(Clone, Debug)]
pub struct DispatchOutcome<R, S> {
    /// One status per input job, **in input order** — independent of
    /// worker count and steal interleaving.
    pub results: Vec<JobStatus<R>>,
    /// Per-worker execution reports, indexed by worker id.
    pub workers: Vec<WorkerReport<S>>,
}

/// What one pool task hands back when its drain loop ends: the
/// worker's report plus its `(input index, status)` pairs.
type WorkerOutput<S, R> = (WorkerReport<S>, Vec<(usize, JobStatus<R>)>);

/// Renders a caught panic payload as text.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One worker's drain loop body: run `step` under `catch_unwind`,
/// respawning the state on panic. Shared by the inline and threaded
/// paths so both have identical failure semantics.
#[allow(clippy::too_many_arguments)]
fn run_step<J, R, S, I, F>(
    worker: usize,
    index: usize,
    state: &mut S,
    item: &J,
    init: &I,
    step: &F,
    panics: &mut u64,
    trace: &Trace,
) -> JobStatus<R>
where
    I: Fn(usize) -> S,
    F: Fn(&mut S, &J) -> R,
{
    match catch_unwind(AssertUnwindSafe(|| step(state, item))) {
        Ok(result) => JobStatus::Done(result),
        Err(payload) => {
            *panics += 1;
            let message = panic_message(payload);
            trace.emit(
                "job_panicked",
                vec![
                    ("job", Json::U64(index as u64)),
                    ("worker", Json::U64(worker as u64)),
                    ("message", Json::Str(message.clone())),
                ],
            );
            // The old state was abandoned mid-mutation; rebuild it
            // before touching the next job.
            *state = init(worker);
            JobStatus::Panicked { message }
        }
    }
}

/// Runs `step` over `items` on `jobs` workers and returns one
/// [`JobStatus`] per item, in input order.
///
/// `init(worker)` builds each worker's private state once, on the
/// worker's own thread (provers are neither `Send` nor cheap — they
/// must be born where they work), and again after any panic. `jobs <=
/// 1` runs everything inline on the calling thread with no
/// synchronisation at all. `deadline`, if given, is checked before
/// each job is started; jobs never started are [`JobStatus::Skipped`].
pub fn run_ordered<J, R, S, I, F>(
    jobs: usize,
    items: Vec<J>,
    deadline: Option<&Deadline>,
    init: I,
    step: F,
) -> DispatchOutcome<R, S>
where
    J: Sync,
    R: Send,
    S: Send,
    I: Fn(usize) -> S + Sync,
    F: Fn(&mut S, &J) -> R + Sync,
{
    run_ordered_traced(jobs, items, deadline, &Trace::disabled(), init, step)
}

/// [`run_ordered`] with an event [`Trace`]: emits `job_panicked` (with
/// job index, worker, and panic message) as panics are absorbed, and
/// one `jobs_skipped` summary when an expired deadline left jobs
/// unstarted. A disabled trace makes this identical to [`run_ordered`]
/// at a branch's cost per event site.
pub fn run_ordered_traced<J, R, S, I, F>(
    jobs: usize,
    items: Vec<J>,
    deadline: Option<&Deadline>,
    trace: &Trace,
    init: I,
    step: F,
) -> DispatchOutcome<R, S>
where
    J: Sync,
    R: Send,
    S: Send,
    I: Fn(usize) -> S + Sync,
    F: Fn(&mut S, &J) -> R + Sync,
{
    let outcome = run_ordered_inner(jobs, items, deadline, trace, init, step);
    if trace.is_enabled() {
        let skipped = outcome
            .results
            .iter()
            .filter(|s| matches!(s, JobStatus::Skipped))
            .count();
        if skipped > 0 {
            trace.emit("jobs_skipped", vec![("count", Json::U64(skipped as u64))]);
        }
    }
    outcome
}

fn run_ordered_inner<J, R, S, I, F>(
    jobs: usize,
    items: Vec<J>,
    deadline: Option<&Deadline>,
    trace: &Trace,
    init: I,
    step: F,
) -> DispatchOutcome<R, S>
where
    J: Sync,
    R: Send,
    S: Send,
    I: Fn(usize) -> S + Sync,
    F: Fn(&mut S, &J) -> R + Sync,
{
    let expired = || deadline.is_some_and(Deadline::expired);
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs == 1 {
        let mut state = init(0);
        let mut results = Vec::with_capacity(items.len());
        let mut executed = 0u64;
        let mut panics = 0u64;
        for (index, item) in items.iter().enumerate() {
            if expired() {
                results.push(JobStatus::Skipped);
                continue;
            }
            results.push(run_step(
                0,
                index,
                &mut state,
                item,
                &init,
                &step,
                &mut panics,
                trace,
            ));
            executed += 1;
        }
        return DispatchOutcome {
            results,
            workers: vec![WorkerReport {
                worker: 0,
                executed,
                stolen: 0,
                panics,
                state,
            }],
        };
    }

    // Deal jobs round-robin so each worker starts with a contiguous
    // slice of the (deterministically ordered) pair list interleaved
    // across the pool.
    let mut queues: Vec<Mutex<VecDeque<(usize, &J)>>> =
        (0..jobs).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, item) in items.iter().enumerate() {
        queues[i % jobs]
            .get_mut()
            .expect("unshared yet")
            .push_back((i, item));
    }
    let queues = &queues;
    let init = &init;
    let step = &step;
    let expired = &expired;

    // Workers are *logical*: each is one task on the persistent
    // shared pool, not a freshly spawned OS thread. The pool joins
    // every task before `scope` returns, so the borrows of `queues`,
    // `init`, `step` and `trace` below are sound.
    let collected: Mutex<Vec<WorkerOutput<S, R>>> = Mutex::new(Vec::with_capacity(jobs));
    crate::pool::shared_pool().scope(|scope| {
        for w in 0..jobs {
            let collected = &collected;
            scope.spawn(move || {
                let mut state = init(w);
                let mut out: Vec<(usize, JobStatus<R>)> = Vec::new();
                let mut executed = 0u64;
                let mut stolen = 0u64;
                let mut panics = 0u64;
                loop {
                    // Stop *starting* work once the deadline is
                    // gone; unclaimed jobs surface as Skipped.
                    if expired() {
                        break;
                    }
                    // Own shard first (front), then steal (back).
                    let job = queues[w]
                        .lock()
                        .expect("queue poisoned")
                        .pop_front()
                        .or_else(|| {
                            (1..jobs).find_map(|off| {
                                let victim = (w + off) % jobs;
                                let job = queues[victim].lock().expect("queue poisoned").pop_back();
                                if job.is_some() {
                                    stolen += 1;
                                }
                                job
                            })
                        });
                    let Some((idx, item)) = job else { break };
                    out.push((
                        idx,
                        run_step(w, idx, &mut state, item, init, step, &mut panics, trace),
                    ));
                    executed += 1;
                }
                collected.lock().expect("collector poisoned").push((
                    WorkerReport {
                        worker: w,
                        executed,
                        stolen,
                        panics,
                        state,
                    },
                    out,
                ));
            });
        }
    });
    let mut workers: Vec<WorkerReport<S>> = Vec::with_capacity(jobs);
    let mut indexed: Vec<(usize, JobStatus<R>)> = Vec::with_capacity(items.len());
    for (report, out) in collected.into_inner().expect("collector poisoned") {
        workers.push(report);
        indexed.extend(out);
    }
    workers.sort_by_key(|r| r.worker);
    // Any job no worker reached (deadline) fills in as Skipped.
    let mut results: Vec<JobStatus<R>> = (0..items.len()).map(|_| JobStatus::Skipped).collect();
    for (i, status) in indexed {
        results[i] = status;
    }
    DispatchOutcome { results, workers }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    /// Unwraps every status, panicking on Panicked/Skipped.
    fn all_done<R, S>(out: DispatchOutcome<R, S>) -> Vec<R> {
        out.results
            .into_iter()
            .map(|s| s.done().expect("job did not complete"))
            .collect()
    }

    #[test]
    fn empty_input_is_fine() {
        let out = run_ordered(4, Vec::<u32>::new(), None, |_| (), |_, x| *x);
        assert!(out.results.is_empty());
        assert_eq!(out.workers.len(), 1);
        assert_eq!(out.workers[0].executed, 0);
    }

    #[test]
    fn results_stay_in_input_order_for_any_job_count() {
        let items: Vec<u64> = (0..257).collect();
        for jobs in [1, 2, 3, 4, 8] {
            let out = run_ordered(jobs, items.clone(), None, |_| (), |_, x| x * 2);
            let total: u64 = out.workers.iter().map(|w| w.executed).sum();
            assert_eq!(
                all_done(out),
                items.iter().map(|x| x * 2).collect::<Vec<_>>(),
                "order broken at jobs={jobs}"
            );
            assert_eq!(total, items.len() as u64);
        }
    }

    #[test]
    fn single_job_runs_inline_without_threads() {
        let caller = std::thread::current().id();
        let out = run_ordered(
            1,
            vec![1u8, 2, 3],
            None,
            |w| w,
            move |_, x| {
                assert_eq!(std::thread::current().id(), caller);
                *x as u32
            },
        );
        assert_eq!(out.workers.len(), 1);
        assert_eq!(out.workers[0].stolen, 0);
        assert_eq!(all_done(out), vec![1, 2, 3]);
    }

    #[test]
    fn traced_run_emits_panic_and_skip_events() {
        // A panicking job produces a job_panicked event with its index.
        let trace = Trace::enabled();
        let out = run_ordered_traced(
            1,
            vec![0u32, 1, 2],
            None,
            &trace,
            |_| (),
            |_, x| {
                if *x == 1 {
                    panic!("boom");
                }
                *x
            },
        );
        assert!(matches!(out.results[1], JobStatus::Panicked { .. }));
        let events = trace.snapshot();
        let panic_event = events
            .iter()
            .find(|e| e.kind == "job_panicked")
            .expect("panic event emitted");
        assert!(panic_event.to_line().contains("\"job\":1"));

        // An expired deadline produces one jobs_skipped summary.
        let trace = Trace::enabled();
        let deadline = Deadline::after(Duration::ZERO);
        let out = run_ordered_traced(
            2,
            vec![1u32, 2, 3],
            Some(&deadline),
            &trace,
            |_| (),
            |_, x| *x,
        );
        assert!(out.results.iter().all(|s| matches!(s, JobStatus::Skipped)));
        let events = trace.snapshot();
        assert!(events.iter().any(|e| e.kind == "jobs_skipped"));
    }

    #[test]
    fn worker_pool_never_exceeds_item_count() {
        // 2 items on 8 requested workers → at most 2 workers.
        let out = run_ordered(8, vec![10u32, 20], None, |w| w, |_, x| *x);
        assert!(out.workers.len() <= 2);
        assert_eq!(all_done(out), vec![10, 20]);
    }

    #[test]
    fn per_worker_state_is_private_and_returned() {
        // Each worker counts its own executions in its state; the sum
        // must cover every item exactly once.
        let items: Vec<u32> = (0..100).collect();
        let out = run_ordered(4, items, None, |w| (w, 0u64), |s, _| s.1 += 1);
        let by_state: u64 = out.workers.iter().map(|w| w.state.1).sum();
        assert_eq!(by_state, 100);
        for w in &out.workers {
            assert_eq!(w.state.1, w.executed, "state count mirrors executed");
            assert_eq!(w.state.0, w.worker, "init saw the right worker id");
        }
    }

    #[test]
    fn unbalanced_loads_get_stolen() {
        // Worker 0's shard (round-robin: even indices) is made slow;
        // the other worker finishes its shard and must steal. A tiny
        // sleep makes starvation overwhelmingly likely rather than
        // certain, so retry a few times to avoid flakiness.
        for _ in 0..5 {
            let slow_hits = AtomicU64::new(0);
            let out = run_ordered(
                2,
                (0..64u64).collect::<Vec<_>>(),
                None,
                |_| (),
                |_, x| {
                    if x % 2 == 0 {
                        slow_hits.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    *x
                },
            );
            let stolen: u64 = out.workers.iter().map(|w| w.stolen).sum();
            assert_eq!(all_done(out), (0..64).collect::<Vec<_>>());
            if stolen > 0 {
                return;
            }
        }
        panic!("no steal observed across 5 heavily unbalanced runs");
    }

    #[test]
    fn panicking_step_quarantines_only_its_job() {
        for jobs in [1, 2, 4] {
            let items: Vec<u32> = (0..20).collect();
            let out = run_ordered(
                jobs,
                items,
                None,
                |_| (),
                |_, x| {
                    if *x % 5 == 3 {
                        panic!("injected failure on {x}");
                    }
                    *x * 10
                },
            );
            for (i, status) in out.results.iter().enumerate() {
                if i % 5 == 3 {
                    match status {
                        JobStatus::Panicked { message } => {
                            assert!(message.contains("injected failure"), "got {message:?}")
                        }
                        other => panic!("job {i} should have panicked, got {other:?}"),
                    }
                } else {
                    assert_eq!(*status, JobStatus::Done(i as u32 * 10), "jobs={jobs}");
                }
            }
            let panics: u64 = out.workers.iter().map(|w| w.panics).sum();
            assert_eq!(panics, 4, "jobs={jobs}");
        }
    }

    #[test]
    fn panic_respawns_worker_state() {
        // State counts jobs since its birth. A panic must reset it, so
        // no state's final count may include jobs from before a panic
        // on the same worker.
        let spawns = AtomicU64::new(0);
        let out = run_ordered(
            1,
            (0..10u32).collect::<Vec<_>>(),
            None,
            |_| {
                spawns.fetch_add(1, Ordering::Relaxed);
                0u64
            },
            |s, x| {
                if *x == 4 {
                    panic!("boom");
                }
                *s += 1;
            },
        );
        // init ran once up front and once for the respawn.
        assert_eq!(spawns.load(Ordering::Relaxed), 2);
        // Final state saw only the 5 jobs after the panic.
        assert_eq!(out.workers[0].state, 5);
        assert_eq!(out.workers[0].panics, 1);
        assert_eq!(out.workers[0].executed, 10);
    }

    #[test]
    fn expired_deadline_skips_everything() {
        let deadline = Deadline::after(Duration::ZERO);
        for jobs in [1, 2, 4] {
            let out = run_ordered(
                jobs,
                (0..16u32).collect::<Vec<_>>(),
                Some(&deadline),
                |_| (),
                |_, x| *x,
            );
            assert_eq!(out.results.len(), 16);
            assert!(
                out.results.iter().all(|s| *s == JobStatus::Skipped),
                "jobs={jobs}"
            );
            let executed: u64 = out.workers.iter().map(|w| w.executed).sum();
            assert_eq!(executed, 0, "jobs={jobs}");
        }
    }

    #[test]
    fn mid_run_trip_leaves_prefix_done_suffix_skipped() {
        // Inline path: trip the deadline from inside job 3. Jobs 0-3
        // complete, 4.. are skipped — deterministically, since jobs==1.
        let deadline = Deadline::never();
        let d = deadline.clone();
        let out = run_ordered(
            1,
            (0..8u32).collect::<Vec<_>>(),
            Some(&deadline),
            |_| (),
            move |_, x| {
                if *x == 3 {
                    d.trip();
                }
                *x
            },
        );
        for (i, status) in out.results.iter().enumerate() {
            if i <= 3 {
                assert_eq!(*status, JobStatus::Done(i as u32));
            } else {
                assert_eq!(*status, JobStatus::Skipped);
            }
        }
    }
}
