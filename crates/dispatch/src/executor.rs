//! The work-stealing executor.
//!
//! Jobs are dealt round-robin into per-worker deques. A worker pops
//! from the *front* of its own deque (cache-friendly FIFO over its
//! shard) and, when dry, steals from the *back* of a victim's deque —
//! the classic owner/thief split that keeps contention on opposite
//! ends. No work is ever created after launch, so a worker may exit
//! as soon as one full scan over every deque comes up empty.
//!
//! Results carry their input index and are re-assembled in input
//! order before returning, which is what makes a sweep built on top
//! scheduling-invariant.

use std::collections::VecDeque;
use std::sync::Mutex;

/// What one worker did, plus its final caller-owned state (where the
/// sweeping layer keeps per-worker provers and proof counters).
#[derive(Clone, Debug)]
pub struct WorkerReport<S> {
    /// Worker index in `0..jobs`.
    pub worker: usize,
    /// Jobs this worker executed.
    pub executed: u64,
    /// Jobs this worker stole from other workers' deques.
    pub stolen: u64,
    /// Final worker state.
    pub state: S,
}

/// Everything a dispatch run produces.
#[derive(Clone, Debug)]
pub struct DispatchOutcome<R, S> {
    /// One result per input job, **in input order** — independent of
    /// worker count and steal interleaving.
    pub results: Vec<R>,
    /// Per-worker execution reports, indexed by worker id.
    pub workers: Vec<WorkerReport<S>>,
}

/// Runs `step` over `items` on `jobs` workers and returns the results
/// in input order.
///
/// `init(worker)` builds each worker's private state once, on the
/// worker's own thread (provers are neither `Send` nor cheap — they
/// must be born where they work). `jobs <= 1` runs everything inline
/// on the calling thread with no synchronisation at all.
pub fn run_ordered<J, R, S, I, F>(
    jobs: usize,
    items: Vec<J>,
    init: I,
    step: F,
) -> DispatchOutcome<R, S>
where
    J: Sync,
    R: Send,
    S: Send,
    I: Fn(usize) -> S + Sync,
    F: Fn(&mut S, &J) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs == 1 {
        let mut state = init(0);
        let mut results = Vec::with_capacity(items.len());
        let mut executed = 0u64;
        for item in &items {
            results.push(step(&mut state, item));
            executed += 1;
        }
        return DispatchOutcome {
            results,
            workers: vec![WorkerReport {
                worker: 0,
                executed,
                stolen: 0,
                state,
            }],
        };
    }

    // Deal jobs round-robin so each worker starts with a contiguous
    // slice of the (deterministically ordered) pair list interleaved
    // across the pool.
    let mut queues: Vec<Mutex<VecDeque<(usize, &J)>>> =
        (0..jobs).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, item) in items.iter().enumerate() {
        queues[i % jobs]
            .get_mut()
            .expect("unshared yet")
            .push_back((i, item));
    }
    let queues = &queues;
    let init = &init;
    let step = &step;

    let mut workers: Vec<WorkerReport<S>> = Vec::with_capacity(jobs);
    let mut indexed: Vec<(usize, R)> = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|w| {
                scope.spawn(move || {
                    let mut state = init(w);
                    let mut out: Vec<(usize, R)> = Vec::new();
                    let mut executed = 0u64;
                    let mut stolen = 0u64;
                    loop {
                        // Own shard first (front), then steal (back).
                        let job = queues[w]
                            .lock()
                            .expect("queue poisoned")
                            .pop_front()
                            .or_else(|| {
                                (1..jobs).find_map(|off| {
                                    let victim = (w + off) % jobs;
                                    let job =
                                        queues[victim].lock().expect("queue poisoned").pop_back();
                                    if job.is_some() {
                                        stolen += 1;
                                    }
                                    job
                                })
                            });
                        let Some((idx, item)) = job else { break };
                        out.push((idx, step(&mut state, item)));
                        executed += 1;
                    }
                    (
                        WorkerReport {
                            worker: w,
                            executed,
                            stolen,
                            state,
                        },
                        out,
                    )
                })
            })
            .collect();
        for handle in handles {
            let (report, out) = handle.join().expect("worker panicked");
            workers.push(report);
            indexed.extend(out);
        }
    });
    workers.sort_by_key(|r| r.worker);
    indexed.sort_by_key(|(i, _)| *i);
    let results = indexed.into_iter().map(|(_, r)| r).collect();
    DispatchOutcome { results, workers }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn empty_input_is_fine() {
        let out = run_ordered(4, Vec::<u32>::new(), |_| (), |_, x| *x);
        assert!(out.results.is_empty());
        assert_eq!(out.workers.len(), 1);
        assert_eq!(out.workers[0].executed, 0);
    }

    #[test]
    fn results_stay_in_input_order_for_any_job_count() {
        let items: Vec<u64> = (0..257).collect();
        for jobs in [1, 2, 3, 4, 8] {
            let out = run_ordered(jobs, items.clone(), |_| (), |_, x| x * 2);
            assert_eq!(
                out.results,
                items.iter().map(|x| x * 2).collect::<Vec<_>>(),
                "order broken at jobs={jobs}"
            );
            let total: u64 = out.workers.iter().map(|w| w.executed).sum();
            assert_eq!(total, items.len() as u64);
        }
    }

    #[test]
    fn single_job_runs_inline_without_threads() {
        let caller = std::thread::current().id();
        let out = run_ordered(
            1,
            vec![1u8, 2, 3],
            |w| w,
            move |_, x| {
                assert_eq!(std::thread::current().id(), caller);
                *x as u32
            },
        );
        assert_eq!(out.results, vec![1, 2, 3]);
        assert_eq!(out.workers.len(), 1);
        assert_eq!(out.workers[0].stolen, 0);
    }

    #[test]
    fn worker_pool_never_exceeds_item_count() {
        // 2 items on 8 requested workers → at most 2 workers.
        let out = run_ordered(8, vec![10u32, 20], |w| w, |_, x| *x);
        assert!(out.workers.len() <= 2);
        assert_eq!(out.results, vec![10, 20]);
    }

    #[test]
    fn per_worker_state_is_private_and_returned() {
        // Each worker counts its own executions in its state; the sum
        // must cover every item exactly once.
        let items: Vec<u32> = (0..100).collect();
        let out = run_ordered(4, items, |w| (w, 0u64), |s, _| s.1 += 1);
        let by_state: u64 = out.workers.iter().map(|w| w.state.1).sum();
        assert_eq!(by_state, 100);
        for w in &out.workers {
            assert_eq!(w.state.1, w.executed, "state count mirrors executed");
            assert_eq!(w.state.0, w.worker, "init saw the right worker id");
        }
    }

    #[test]
    fn unbalanced_loads_get_stolen() {
        // Worker 0's shard (round-robin: even indices) is made slow;
        // the other worker finishes its shard and must steal. A tiny
        // sleep makes starvation overwhelmingly likely rather than
        // certain, so retry a few times to avoid flakiness.
        for _ in 0..5 {
            let slow_hits = AtomicU64::new(0);
            let out = run_ordered(
                2,
                (0..64u64).collect::<Vec<_>>(),
                |_| (),
                |_, x| {
                    if x % 2 == 0 {
                        slow_hits.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(std::time::Duration::from_millis(2));
                    }
                    *x
                },
            );
            assert_eq!(out.results, (0..64).collect::<Vec<_>>());
            let stolen: u64 = out.workers.iter().map(|w| w.stolen).sum();
            if stolen > 0 {
                return;
            }
        }
        panic!("no steal observed across 5 heavily unbalanced runs");
    }
}
