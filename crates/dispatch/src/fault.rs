//! Deterministic fault injection for chaos testing the dispatch and
//! sweeping stack (feature `fault-inject` only — never compiled into
//! release binaries unless explicitly requested).
//!
//! A [`FaultPlan`] is a pure function from `(seed, job index)` to a
//! [`FaultAction`]: it holds no mutable state, so the same seed
//! produces the same faults at the same job indices regardless of
//! worker count, stealing order or wall-clock timing. That is what
//! lets the chaos suite demand *byte-identical* deterministic run
//! reports across `--jobs` values while panicking workers, stalling
//! jobs and spuriously reporting `Unknown`: the faults are part of
//! the input, not of the schedule.
//!
//! The action mix (per 16 jobs: one panic, one stall, one spurious
//! `Unknown`, thirteen untouched) keeps most of the workload healthy
//! so soundness assertions still have merges to compare against.

use std::time::Duration;

/// What to do to the job at a given index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Leave the job alone.
    None,
    /// Panic inside the worker step (exercises `catch_unwind`
    /// isolation and worker-state respawn).
    Panic,
    /// Sleep before running the job (exercises stall detection and
    /// schedule-independence of the merged results).
    Stall(Duration),
    /// Report a spurious `Unknown` instead of running the job
    /// (exercises the inconclusive/quarantine path).
    SpuriousUnknown,
}

/// A seeded, deterministic plan of injected faults.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
}

/// SplitMix64 — tiny, well-mixed, and dependency-free; exactly what a
/// reproducible fault oracle needs.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl FaultPlan {
    /// Creates the plan identified by `seed`.
    pub fn from_seed(seed: u64) -> Self {
        FaultPlan { seed }
    }

    /// The seed this plan was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The fault (if any) for the job at `index`. Pure: same plan and
    /// index always yield the same action.
    pub fn action(&self, index: usize) -> FaultAction {
        let h = splitmix64(self.seed ^ splitmix64(index as u64 + 1));
        match h % 16 {
            0 => FaultAction::Panic,
            1 => FaultAction::Stall(Duration::from_millis(1 + (h >> 8) % 4)),
            2 => FaultAction::SpuriousUnknown,
            _ => FaultAction::None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_pure_functions_of_seed_and_index() {
        let p = FaultPlan::from_seed(42);
        let q = FaultPlan::from_seed(42);
        for i in 0..256 {
            assert_eq!(p.action(i), q.action(i));
        }
        assert_eq!(p.seed(), 42);
    }

    #[test]
    fn distinct_seeds_produce_distinct_plans() {
        let p = FaultPlan::from_seed(1);
        let q = FaultPlan::from_seed(2);
        let differs = (0..256).any(|i| p.action(i) != q.action(i));
        assert!(
            differs,
            "two seeds giving 256 identical actions is broken mixing"
        );
    }

    #[test]
    fn every_action_kind_occurs_and_most_jobs_are_untouched() {
        let p = FaultPlan::from_seed(7);
        let mut panics = 0;
        let mut stalls = 0;
        let mut unknowns = 0;
        let mut clean = 0;
        for i in 0..512 {
            match p.action(i) {
                FaultAction::Panic => panics += 1,
                FaultAction::Stall(d) => {
                    assert!(d >= Duration::from_millis(1) && d <= Duration::from_millis(4));
                    stalls += 1;
                }
                FaultAction::SpuriousUnknown => unknowns += 1,
                FaultAction::None => clean += 1,
            }
        }
        assert!(panics > 0 && stalls > 0 && unknowns > 0);
        assert!(clean > 512 / 2, "most jobs must run clean: {clean}");
    }
}
