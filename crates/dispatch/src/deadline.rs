//! Wall-clock deadlines and the watchdog that enforces them.
//!
//! A [`Deadline`] is the one object threaded from the CLI down to the
//! CDCL loop: it pairs an optional expiry instant with a shared
//! interrupt flag (the same `Arc<AtomicBool>` the SAT solver polls).
//! Anything holding a clone can ask [`Deadline::expired`] at a natural
//! boundary — between rounds, between pairs, between conflicts — and
//! anything stuck *inside* a long operation is rescued by the
//! [`Watchdog`] thread, which trips the flag from outside when the
//! deadline passes or per-pair progress stalls.
//!
//! The flag is sticky for real expiry: once the instant is past, every
//! `expired()` call answers `true` forever. A stall trip is different —
//! the watchdog raises the flag to abort whatever is in flight, then
//! lowers it again once progress resumes, so one pathological pair
//! costs only itself (reported `Undecided`), not the rest of the sweep.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A shared wall-clock deadline joined to an interrupt flag.
///
/// Clones share the flag, so tripping one clone interrupts every
/// solver the others were handed to. The default value never expires.
#[derive(Clone, Debug, Default)]
pub struct Deadline {
    expires_at: Option<Instant>,
    flag: Arc<AtomicBool>,
}

impl Deadline {
    /// A deadline that never expires on its own (it can still be
    /// tripped manually via [`Deadline::trip`]).
    pub fn never() -> Self {
        Deadline::default()
    }

    /// Expires `timeout` from now. A huge `timeout` that would
    /// overflow `Instant` arithmetic degrades to "never".
    pub fn after(timeout: Duration) -> Self {
        Deadline {
            expires_at: Instant::now().checked_add(timeout),
            flag: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Expires at the given instant.
    pub fn at(expires_at: Instant) -> Self {
        Deadline {
            expires_at: Some(expires_at),
            flag: Arc::new(AtomicBool::new(false)),
        }
    }

    /// True if this deadline has a finite expiry instant.
    pub fn is_finite(&self) -> bool {
        self.expires_at.is_some()
    }

    /// The expiry instant, if finite. Solvers store this and compare
    /// against `Instant::now()` at conflict boundaries.
    pub fn expires_at(&self) -> Option<Instant> {
        self.expires_at
    }

    /// The shared interrupt flag, for wiring into a solver's
    /// interrupt hook.
    pub fn flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.flag)
    }

    /// True once the expiry instant has passed (time only; ignores
    /// the flag and does not raise it).
    pub fn past_due(&self) -> bool {
        self.expires_at.is_some_and(|at| Instant::now() >= at)
    }

    /// True once the deadline has expired or the flag has been
    /// tripped. Observing real expiry raises the flag, so in-flight
    /// solvers abort even without a watchdog.
    pub fn expired(&self) -> bool {
        if self.flag.load(Ordering::Relaxed) {
            return true;
        }
        if self.past_due() {
            self.flag.store(true, Ordering::Relaxed);
            return true;
        }
        false
    }

    /// Raises the interrupt flag manually (watchdog stall trips,
    /// signal handlers).
    pub fn trip(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Lowers the flag again, but only while the deadline itself has
    /// not passed — real expiry stays sticky. Used by the watchdog to
    /// recover after a stall trip.
    pub fn clear_if_not_due(&self) {
        if !self.past_due() {
            self.flag.store(false, Ordering::Relaxed);
        }
    }

    /// Time left until expiry (`None` for a never-expiring deadline,
    /// zero once past due).
    pub fn remaining(&self) -> Option<Duration> {
        self.expires_at
            .map(|at| at.saturating_duration_since(Instant::now()))
    }
}

/// A shared monotone counter the sweep bumps once per completed pair;
/// the watchdog watches it to detect a stalled prover.
#[derive(Clone, Debug, Default)]
pub struct Progress(Arc<AtomicU64>);

impl Progress {
    /// Records one unit of forward progress.
    pub fn tick(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Current count.
    pub fn count(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Background thread that trips a [`Deadline`]'s flag when the expiry
/// instant passes, and optionally when no [`Progress`] tick lands
/// within a stall window. Dropping the watchdog stops and joins it.
#[derive(Debug)]
pub struct Watchdog {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

/// How often the watchdog polls. Coarse enough to stay invisible in
/// profiles, fine enough that a deadline overshoot is bounded by ~5ms.
const POLL: Duration = Duration::from_millis(5);

impl Watchdog {
    /// Spawns the watchdog. `stall` is the optional pair
    /// (progress counter, stall window): if the counter does not move
    /// for a full window the flag is raised, and lowered again once it
    /// moves (unless the deadline itself has passed).
    pub fn spawn(deadline: Deadline, stall: Option<(Progress, Duration)>) -> Self {
        Watchdog::spawn_traced(deadline, stall, simgen_obs::Trace::disabled())
    }

    /// [`Watchdog::spawn`] with an event trace: emits
    /// `watchdog_deadline_trip` when the wall clock runs out and
    /// `watchdog_stall_trip` / `watchdog_stall_clear` around stall
    /// recoveries.
    pub fn spawn_traced(
        deadline: Deadline,
        stall: Option<(Progress, Duration)>,
        trace: simgen_obs::Trace,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("simgen-watchdog".into())
            .spawn(move || watch(&deadline, stall.as_ref(), &stop2, &trace))
            .expect("spawn watchdog thread");
        Watchdog {
            stop,
            handle: Some(handle),
        }
    }
}

fn watch(
    deadline: &Deadline,
    stall: Option<&(Progress, Duration)>,
    stop: &AtomicBool,
    trace: &simgen_obs::Trace,
) {
    let mut last_count = stall.map(|(p, _)| p.count());
    let mut last_change = Instant::now();
    let mut tripped_for_stall = false;
    while !stop.load(Ordering::Relaxed) {
        if deadline.past_due() {
            deadline.trip();
            trace.emit("watchdog_deadline_trip", vec![]);
            return;
        }
        if let Some((progress, window)) = stall {
            let count = progress.count();
            if Some(count) != last_count {
                last_count = Some(count);
                last_change = Instant::now();
                if tripped_for_stall {
                    // The stalled pair aborted and work resumed: give
                    // the remaining pairs their interrupt flag back.
                    deadline.clear_if_not_due();
                    tripped_for_stall = false;
                    trace.emit(
                        "watchdog_stall_clear",
                        vec![("progress", simgen_obs::Json::U64(count))],
                    );
                }
            } else if !tripped_for_stall && last_change.elapsed() >= *window {
                deadline.trip();
                tripped_for_stall = true;
                trace.emit(
                    "watchdog_stall_trip",
                    vec![("progress", simgen_obs::Json::U64(count))],
                );
            }
        }
        std::thread::sleep(POLL);
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_deadline_does_not_expire() {
        let d = Deadline::never();
        assert!(!d.is_finite());
        assert!(!d.expired());
        assert_eq!(d.remaining(), None);
    }

    #[test]
    fn past_instant_is_expired_and_raises_flag() {
        let d = Deadline::after(Duration::ZERO);
        assert!(d.expired());
        assert!(d.flag().load(Ordering::Relaxed), "expiry raises the flag");
        // Sticky: stays expired, and clear_if_not_due cannot revive it.
        d.clear_if_not_due();
        assert!(d.expired());
    }

    #[test]
    fn manual_trip_is_shared_across_clones_and_clearable() {
        let d = Deadline::after(Duration::from_secs(3600));
        let clone = d.clone();
        assert!(!clone.expired());
        d.trip();
        assert!(clone.expired(), "clones share the flag");
        d.clear_if_not_due();
        assert!(!clone.expired(), "not past due, so the trip clears");
    }

    #[test]
    fn remaining_saturates_at_zero() {
        let d = Deadline::at(Instant::now() - Duration::from_millis(10));
        assert_eq!(d.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn watchdog_trips_flag_at_deadline() {
        let d = Deadline::after(Duration::from_millis(20));
        let _w = Watchdog::spawn(d.clone(), None);
        let start = Instant::now();
        while !d.flag().load(Ordering::Relaxed) {
            assert!(
                start.elapsed() < Duration::from_secs(5),
                "watchdog never tripped the flag"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn watchdog_trips_on_stall_and_recovers_on_progress() {
        let d = Deadline::after(Duration::from_secs(3600));
        let progress = Progress::default();
        let _w = Watchdog::spawn(
            d.clone(),
            Some((progress.clone(), Duration::from_millis(30))),
        );
        let start = Instant::now();
        while !d.expired() {
            assert!(
                start.elapsed() < Duration::from_secs(5),
                "stall never tripped the flag"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        // Progress resumes: flag must come back down (deadline far off).
        // Tick every poll so the watchdog keeps seeing fresh progress
        // and cannot legitimately re-trip while we wait.
        let start = Instant::now();
        loop {
            progress.tick();
            if !d.expired() {
                break;
            }
            assert!(
                start.elapsed() < Duration::from_secs(5),
                "flag never cleared after progress resumed"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn progress_counts_ticks() {
        let p = Progress::default();
        assert_eq!(p.count(), 0);
        p.tick();
        p.tick();
        assert_eq!(p.count(), 2);
    }
}
