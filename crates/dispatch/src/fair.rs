//! A bounded, multi-producer job queue with per-client fairness.
//!
//! The serve daemon feeds every connection's submissions through one
//! of these: each client gets its own FIFO lane, and the consumer
//! drains lanes round-robin, so a client that dumps a hundred jobs
//! cannot starve one that submits a single query — the "fair
//! round-robin budget slicing" of the service layer.
//!
//! The queue is bounded by a *total* job count across all lanes.
//! Pushing into a full queue fails immediately with
//! [`PushError::Overloaded`] — the daemon surfaces that to the client
//! as an explicit rejection instead of buffering unboundedly or
//! blocking the reader thread. Closing the queue wakes all blocked
//! consumers; remaining jobs can still be drained (`pop` returns
//! queued work before reporting closure), which is what lets a
//! SIGTERM shutdown finish in-flight submissions.

use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at its total capacity; the job was NOT enqueued.
    /// Clients should see an explicit `overloaded` rejection.
    Overloaded,
    /// The queue was closed (daemon shutting down); the job was NOT
    /// enqueued.
    Closed,
}

impl std::fmt::Display for PushError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PushError::Overloaded => f.write_str("queue overloaded"),
            PushError::Closed => f.write_str("queue closed"),
        }
    }
}

impl std::error::Error for PushError {}

struct Lanes<T> {
    /// One FIFO lane per client id; lanes persist for the queue's
    /// lifetime (client ids are small integers handed out by the
    /// accept loop, so the map never grows past the connection count).
    lanes: HashMap<u64, VecDeque<T>>,
    /// Round-robin order of lane ids: a lane is appended when it goes
    /// from empty to non-empty and rotated to the back after serving
    /// one job, so service interleaves clients 1:1.
    order: VecDeque<u64>,
    /// Total queued jobs across all lanes.
    len: usize,
    closed: bool,
}

/// Bounded multi-lane FIFO with round-robin service across lanes.
pub struct FairQueue<T> {
    state: Mutex<Lanes<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> FairQueue<T> {
    /// A queue admitting at most `capacity` jobs in total (across all
    /// clients). Capacity 0 is clamped to 1 so the queue is usable.
    pub fn new(capacity: usize) -> Self {
        FairQueue {
            state: Mutex::new(Lanes {
                lanes: HashMap::new(),
                order: VecDeque::new(),
                len: 0,
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues `job` on `client`'s lane. Fails fast when full or
    /// closed — never blocks the producer.
    pub fn push(&self, client: u64, job: T) -> Result<(), PushError> {
        let mut s = self.state.lock().unwrap();
        if s.closed {
            return Err(PushError::Closed);
        }
        if s.len >= self.capacity {
            return Err(PushError::Overloaded);
        }
        let lane = s.lanes.entry(client).or_default();
        let was_empty = lane.is_empty();
        lane.push_back(job);
        s.len += 1;
        if was_empty {
            s.order.push_back(client);
        }
        drop(s);
        self.ready.notify_one();
        Ok(())
    }

    /// Dequeues the next job, serving client lanes round-robin.
    /// Blocks while the queue is empty and open; returns `None` only
    /// once the queue is closed *and* fully drained.
    pub fn pop(&self) -> Option<(u64, T)> {
        let mut s = self.state.lock().unwrap();
        loop {
            if let Some(client) = s.order.pop_front() {
                let lane = s.lanes.get_mut(&client).expect("lane exists while listed");
                let job = lane.pop_front().expect("listed lane is non-empty");
                let lane_has_more = !lane.is_empty();
                s.len -= 1;
                if lane_has_more {
                    // Rotate to the back: one job per turn per client.
                    s.order.push_back(client);
                }
                return Some((client, job));
            }
            if s.closed {
                return None;
            }
            s = self.ready.wait(s).unwrap();
        }
    }

    /// Non-blocking [`FairQueue::pop`].
    pub fn try_pop(&self) -> Option<(u64, T)> {
        let mut s = self.state.lock().unwrap();
        let client = s.order.pop_front()?;
        let lane = s.lanes.get_mut(&client).expect("lane exists while listed");
        let job = lane.pop_front().expect("listed lane is non-empty");
        let lane_has_more = !lane.is_empty();
        s.len -= 1;
        if lane_has_more {
            s.order.push_back(client);
        }
        Some((client, job))
    }

    /// Marks the queue closed: future pushes fail with
    /// [`PushError::Closed`], blocked consumers wake, and `pop`
    /// drains what is already queued before returning `None`.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.ready.notify_all();
    }

    /// Total queued jobs across all lanes.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().len
    }

    /// True when no job is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True once [`FairQueue::close`] was called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().unwrap().closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_a_single_client() {
        let q = FairQueue::new(16);
        for i in 0..5 {
            q.push(1, i).unwrap();
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.try_pop().map(|(_, j)| j)).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn round_robin_across_clients() {
        let q = FairQueue::new(16);
        // Client 1 floods; client 2 submits one job afterwards.
        for i in 0..4 {
            q.push(1, (1, i)).unwrap();
        }
        q.push(2, (2, 0)).unwrap();
        let order: Vec<(u64, (i32, i32))> = std::iter::from_fn(|| q.try_pop()).collect();
        let clients: Vec<u64> = order.iter().map(|&(c, _)| c).collect();
        // Client 2 is served second, not fifth.
        assert_eq!(clients, vec![1, 2, 1, 1, 1]);
        // And each lane stays FIFO internally.
        let lane1: Vec<i32> = order
            .iter()
            .filter(|&&(c, _)| c == 1)
            .map(|&(_, (_, i))| i)
            .collect();
        assert_eq!(lane1, vec![0, 1, 2, 3]);
    }

    #[test]
    fn capacity_rejects_with_overloaded() {
        let q = FairQueue::new(2);
        q.push(1, 'a').unwrap();
        q.push(2, 'b').unwrap();
        assert_eq!(q.push(3, 'c'), Err(PushError::Overloaded));
        assert_eq!(q.len(), 2);
        // Draining frees capacity again.
        q.try_pop().unwrap();
        assert!(q.push(3, 'c').is_ok());
    }

    #[test]
    fn close_drains_then_ends() {
        let q = FairQueue::new(8);
        q.push(1, 1).unwrap();
        q.push(1, 2).unwrap();
        q.close();
        assert_eq!(q.push(1, 3), Err(PushError::Closed));
        // Queued jobs still come out, then None.
        assert_eq!(q.pop(), Some((1, 1)));
        assert_eq!(q.pop(), Some((1, 2)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_pop_wakes_on_push_and_close() {
        let q = Arc::new(FairQueue::new(8));
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || {
            let mut got = Vec::new();
            while let Some((_, j)) = q2.pop() {
                got.push(j);
            }
            got
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.push(1, 42).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().unwrap(), vec![42]);
    }

    #[test]
    fn many_producers_one_consumer() {
        let q = Arc::new(FairQueue::new(1024));
        let mut producers = Vec::new();
        for client in 0..4u64 {
            let q = Arc::clone(&q);
            producers.push(std::thread::spawn(move || {
                for i in 0..50 {
                    while q.push(client, (client, i)).is_err() {
                        std::thread::yield_now();
                    }
                }
            }));
        }
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut per_client = HashMap::new();
        while let Some((c, (c2, i))) = q.pop() {
            assert_eq!(c, c2);
            let next = per_client.entry(c).or_insert(0);
            assert_eq!(*next, i, "lane {c} stays FIFO");
            *next += 1;
        }
        assert!(per_client.values().all(|&n| n == 50));
    }
}
