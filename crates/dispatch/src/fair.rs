//! A bounded, multi-producer job queue with per-client fairness and
//! priority-aware load shedding.
//!
//! The serve daemon feeds every connection's submissions through one
//! of these: each client gets its own FIFO lane, and the consumer
//! drains lanes round-robin, so a client that dumps a hundred jobs
//! cannot starve one that submits a single query — the "fair
//! round-robin budget slicing" of the service layer.
//!
//! The queue is bounded by a *total* job count across all lanes.
//! Pushing into a full queue either *sheds* a lower-priority queued
//! job to make room (the victim is returned to the producer so the
//! daemon can answer its client explicitly) or fails immediately with
//! [`PushError::Overloaded`] when nothing queued is lower-priority —
//! the daemon surfaces that to the client as an explicit rejection
//! instead of buffering unboundedly or blocking the reader thread.
//!
//! Jobs may carry a queue-time deadline. A job whose deadline passes
//! while it waits is still handed to the consumer — as
//! [`Popped::Expired`] — so its client gets an explicit `shed` answer
//! rather than a silent drop or a doomed execution.
//!
//! Closing the queue wakes all blocked consumers; remaining jobs can
//! still be drained (`pop` returns queued work before reporting
//! closure), which is what lets a SIGTERM shutdown finish in-flight
//! submissions.

use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// Default submission priority: the middle of the 0–9 scale, so
/// explicit priorities can rank both above and below unmarked jobs.
pub const DEFAULT_PRIORITY: u8 = 5;

/// Highest admissible priority value (priorities are `0..=MAX_PRIORITY`,
/// larger = more important).
pub const MAX_PRIORITY: u8 = 9;

/// Why a push was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at its total capacity and holds nothing of lower
    /// priority to shed; the job was NOT enqueued. Clients should see
    /// an explicit `overloaded` rejection.
    Overloaded,
    /// The queue was closed (daemon shutting down); the job was NOT
    /// enqueued.
    Closed,
}

impl std::fmt::Display for PushError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PushError::Overloaded => f.write_str("queue overloaded"),
            PushError::Closed => f.write_str("queue closed"),
        }
    }
}

impl std::error::Error for PushError {}

/// What [`FairQueue::pop`] hands the consumer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Popped<T> {
    /// A live job: execute it.
    Ready(T),
    /// The job's queue-time deadline passed while it waited. The
    /// consumer should answer its client with an explicit shed
    /// notice instead of executing it.
    Expired(T),
}

impl<T> Popped<T> {
    /// The carried job, regardless of liveness.
    pub fn into_inner(self) -> T {
        match self {
            Popped::Ready(j) | Popped::Expired(j) => j,
        }
    }
}

struct Entry<T> {
    job: T,
    prio: u8,
    /// Queue-time deadline: past this instant the job is answered
    /// `shed` instead of executed.
    deadline: Option<Instant>,
    /// Global admission order, for deterministic shed tie-breaking
    /// (newest of the lowest-priority jobs goes first).
    seq: u64,
}

struct Lanes<T> {
    /// One FIFO lane per client id; lanes persist for the queue's
    /// lifetime (client ids are small integers handed out by the
    /// accept loop, so the map never grows past the connection count).
    lanes: HashMap<u64, VecDeque<Entry<T>>>,
    /// Round-robin order of lane ids: a lane is appended when it goes
    /// from empty to non-empty and rotated to the back after serving
    /// one job, so service interleaves clients 1:1.
    order: VecDeque<u64>,
    /// Total queued jobs across all lanes.
    len: usize,
    next_seq: u64,
    closed: bool,
}

impl<T> Lanes<T> {
    /// Locates the shed victim for an incoming job of priority `prio`:
    /// the globally lowest-priority queued entry strictly below
    /// `prio`, newest first among ties. Returns its lane and seq.
    fn victim(&self, prio: u8) -> Option<(u64, u64)> {
        let mut best: Option<(u8, u64, u64)> = None; // (prio, seq, client)
        for (&client, lane) in &self.lanes {
            for e in lane {
                if e.prio >= prio {
                    continue;
                }
                let better = match best {
                    None => true,
                    // Lower priority always loses; among equals the
                    // *newest* (largest seq) is shed, preserving the
                    // oldest queued work of that priority.
                    Some((bp, bs, _)) => e.prio < bp || (e.prio == bp && e.seq > bs),
                };
                if better {
                    best = Some((e.prio, e.seq, client));
                }
            }
        }
        best.map(|(_, seq, client)| (client, seq))
    }

    /// Removes the entry with `seq` from `client`'s lane, fixing up
    /// the round-robin order if the lane empties.
    fn remove(&mut self, client: u64, seq: u64) -> Option<T> {
        let lane = self.lanes.get_mut(&client)?;
        let at = lane.iter().position(|e| e.seq == seq)?;
        let entry = lane.remove(at).expect("position just found");
        self.len -= 1;
        if lane.is_empty() {
            self.order.retain(|&c| c != client);
        }
        Some(entry.job)
    }
}

/// Bounded multi-lane FIFO with round-robin service across lanes and
/// lowest-priority-first shedding under overload.
pub struct FairQueue<T> {
    state: Mutex<Lanes<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> FairQueue<T> {
    /// A queue admitting at most `capacity` jobs in total (across all
    /// clients). Capacity 0 is clamped to 1 so the queue is usable.
    pub fn new(capacity: usize) -> Self {
        FairQueue {
            state: Mutex::new(Lanes {
                lanes: HashMap::new(),
                order: VecDeque::new(),
                len: 0,
                next_seq: 0,
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues `job` on `client`'s lane at [`DEFAULT_PRIORITY`] with
    /// no queue-time deadline. Fails fast when full or closed — never
    /// blocks the producer.
    pub fn push(&self, client: u64, job: T) -> Result<(), PushError> {
        self.push_prio(client, DEFAULT_PRIORITY, None, job)
            .map(|_| ())
    }

    /// Enqueues `job` on `client`'s lane with an explicit priority
    /// (0–9, larger = more important) and optional queue-time
    /// deadline.
    ///
    /// When the queue is full, the globally lowest-priority queued job
    /// strictly below `prio` is *shed* to make room — newest first
    /// among ties — and returned as `Ok(Some((victim_client, job)))`
    /// so the caller can answer that client explicitly. With nothing
    /// lower-priority queued, the push fails with
    /// [`PushError::Overloaded`] and nothing changes. Never blocks.
    pub fn push_prio(
        &self,
        client: u64,
        prio: u8,
        deadline: Option<Instant>,
        job: T,
    ) -> Result<Option<(u64, T)>, PushError> {
        let prio = prio.min(MAX_PRIORITY);
        let mut s = self.state.lock().unwrap();
        if s.closed {
            return Err(PushError::Closed);
        }
        let shed = if s.len >= self.capacity {
            let (vc, vs) = s.victim(prio).ok_or(PushError::Overloaded)?;
            let victim = s.remove(vc, vs).expect("victim just located");
            Some((vc, victim))
        } else {
            None
        };
        let seq = s.next_seq;
        s.next_seq += 1;
        let lane = s.lanes.entry(client).or_default();
        let was_empty = lane.is_empty();
        lane.push_back(Entry {
            job,
            prio,
            deadline,
            seq,
        });
        s.len += 1;
        if was_empty {
            s.order.push_back(client);
        }
        drop(s);
        self.ready.notify_one();
        Ok(shed)
    }

    fn pop_locked(s: &mut Lanes<T>) -> Option<(u64, Popped<T>)> {
        let client = s.order.pop_front()?;
        let lane = s.lanes.get_mut(&client).expect("lane exists while listed");
        let entry = lane.pop_front().expect("listed lane is non-empty");
        let lane_has_more = !lane.is_empty();
        s.len -= 1;
        if lane_has_more {
            // Rotate to the back: one job per turn per client.
            s.order.push_back(client);
        }
        let expired = entry.deadline.is_some_and(|at| Instant::now() >= at);
        let job = if expired {
            Popped::Expired(entry.job)
        } else {
            Popped::Ready(entry.job)
        };
        Some((client, job))
    }

    /// Dequeues the next job, serving client lanes round-robin.
    /// Blocks while the queue is empty and open; returns `None` only
    /// once the queue is closed *and* fully drained. Jobs whose
    /// queue-time deadline has passed come out as [`Popped::Expired`].
    pub fn pop(&self) -> Option<(u64, Popped<T>)> {
        let mut s = self.state.lock().unwrap();
        loop {
            if let Some(out) = Self::pop_locked(&mut s) {
                return Some(out);
            }
            if s.closed {
                return None;
            }
            s = self.ready.wait(s).unwrap();
        }
    }

    /// Non-blocking [`FairQueue::pop`].
    pub fn try_pop(&self) -> Option<(u64, Popped<T>)> {
        Self::pop_locked(&mut self.state.lock().unwrap())
    }

    /// Marks the queue closed: future pushes fail with
    /// [`PushError::Closed`], blocked consumers wake, and `pop`
    /// drains what is already queued before returning `None`.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.ready.notify_all();
    }

    /// Total queued jobs across all lanes.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().len
    }

    /// True when no job is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True once [`FairQueue::close`] was called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().unwrap().closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    fn drain<T>(q: &FairQueue<T>) -> Vec<(u64, T)> {
        std::iter::from_fn(|| q.try_pop().map(|(c, p)| (c, p.into_inner()))).collect()
    }

    #[test]
    fn fifo_within_a_single_client() {
        let q = FairQueue::new(16);
        for i in 0..5 {
            q.push(1, i).unwrap();
        }
        let order: Vec<i32> = drain(&q).into_iter().map(|(_, j)| j).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn round_robin_across_clients() {
        let q = FairQueue::new(16);
        // Client 1 floods; client 2 submits one job afterwards.
        for i in 0..4 {
            q.push(1, (1, i)).unwrap();
        }
        q.push(2, (2, 0)).unwrap();
        let order: Vec<(u64, (i32, i32))> = drain(&q);
        let clients: Vec<u64> = order.iter().map(|&(c, _)| c).collect();
        // Client 2 is served second, not fifth.
        assert_eq!(clients, vec![1, 2, 1, 1, 1]);
        // And each lane stays FIFO internally.
        let lane1: Vec<i32> = order
            .iter()
            .filter(|&&(c, _)| c == 1)
            .map(|&(_, (_, i))| i)
            .collect();
        assert_eq!(lane1, vec![0, 1, 2, 3]);
    }

    #[test]
    fn capacity_rejects_with_overloaded() {
        let q = FairQueue::new(2);
        q.push(1, 'a').unwrap();
        q.push(2, 'b').unwrap();
        // Same priority everywhere: nothing is lower, so reject.
        assert_eq!(q.push(3, 'c'), Err(PushError::Overloaded));
        assert_eq!(q.len(), 2);
        // Draining frees capacity again.
        q.try_pop().unwrap();
        assert!(q.push(3, 'c').is_ok());
    }

    #[test]
    fn full_queue_sheds_lowest_priority_newest_first() {
        let q = FairQueue::new(3);
        q.push_prio(1, 2, None, "old-low").unwrap();
        q.push_prio(1, 7, None, "high").unwrap();
        q.push_prio(2, 2, None, "new-low").unwrap();
        // Priority 5 beats the two priority-2 jobs; the *newest* of
        // them is shed, and the push succeeds.
        let shed = q.push_prio(3, 5, None, "mid").unwrap();
        assert_eq!(shed, Some((2, "new-low")));
        assert_eq!(q.len(), 3);
        // An incoming job must be STRICTLY higher than the victim:
        // priority 2 cannot shed the remaining priority-2 job.
        assert_eq!(
            q.push_prio(3, 2, None, "another-low"),
            Err(PushError::Overloaded)
        );
        let jobs: Vec<&str> = drain(&q).into_iter().map(|(_, j)| j).collect();
        assert!(jobs.contains(&"old-low"), "oldest low-prio job survives");
        assert!(jobs.contains(&"high"));
        assert!(jobs.contains(&"mid"));
    }

    #[test]
    fn shedding_empties_a_lane_without_breaking_rotation() {
        let q = FairQueue::new(2);
        q.push_prio(1, 1, None, "low").unwrap();
        q.push_prio(2, 5, None, "a").unwrap();
        // Shedding client 1's only job must drop its lane from the
        // round-robin order entirely.
        let shed = q.push_prio(2, 5, None, "b").unwrap();
        assert_eq!(shed, Some((1, "low")));
        let order: Vec<(u64, &str)> = drain(&q);
        assert_eq!(order, vec![(2, "a"), (2, "b")]);
    }

    #[test]
    fn expired_deadline_pops_as_expired() {
        let q = FairQueue::new(8);
        let past = Instant::now() - Duration::from_millis(1);
        let future = Instant::now() + Duration::from_secs(3600);
        q.push_prio(1, 5, Some(past), "stale").unwrap();
        q.push_prio(1, 5, Some(future), "fresh").unwrap();
        assert_eq!(q.pop(), Some((1, Popped::Expired("stale"))));
        assert_eq!(q.pop(), Some((1, Popped::Ready("fresh"))));
    }

    #[test]
    fn close_drains_then_ends() {
        let q = FairQueue::new(8);
        q.push(1, 1).unwrap();
        q.push(1, 2).unwrap();
        q.close();
        assert_eq!(q.push(1, 3), Err(PushError::Closed));
        // Queued jobs still come out, then None.
        assert_eq!(q.pop(), Some((1, Popped::Ready(1))));
        assert_eq!(q.pop(), Some((1, Popped::Ready(2))));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_pop_wakes_on_push_and_close() {
        let q = Arc::new(FairQueue::new(8));
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || {
            let mut got = Vec::new();
            while let Some((_, j)) = q2.pop() {
                got.push(j.into_inner());
            }
            got
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.push(1, 42).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().unwrap(), vec![42]);
    }

    #[test]
    fn many_producers_one_consumer() {
        let q = Arc::new(FairQueue::new(1024));
        let mut producers = Vec::new();
        for client in 0..4u64 {
            let q = Arc::clone(&q);
            producers.push(std::thread::spawn(move || {
                for i in 0..50 {
                    while q.push(client, (client, i)).is_err() {
                        std::thread::yield_now();
                    }
                }
            }));
        }
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut per_client = HashMap::new();
        while let Some((c, p)) = q.pop() {
            let (c2, i) = p.into_inner();
            assert_eq!(c, c2);
            let next = per_client.entry(c).or_insert(0);
            assert_eq!(*next, i, "lane {c} stays FIFO");
            *next += 1;
        }
        assert!(per_client.values().all(|&n| n == 50));
    }
}
