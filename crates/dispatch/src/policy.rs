//! Per-pair engine selection: which proof engines a pair visits, in
//! what order, and whether the SAT rungs run against a shared
//! incremental region solver or a cold per-pair one.
//!
//! The [`BudgetSchedule`](crate::BudgetSchedule) ladder prices *how
//! much* effort each rung gets; [`EnginePolicy`] decides *which*
//! engines form the ladder. Candidate pairs reach the prover already
//! filtered by simulation evidence (they survived every random and
//! guided pattern), so the policy's job is ordering the two complete
//! engines — BDD within a node limit, then incremental SAT — and
//! choosing the SAT solver's reuse mode.

/// Engine ordering for one pair proof.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EngineMode {
    /// SAT ladder first; BDD only as the fallback after the ladder is
    /// exhausted (and only when the schedule's `bdd_node_limit` allows
    /// it). This is the classical sweeping order and the default.
    #[default]
    Auto,
    /// Try the BDD engine before spending any SAT conflicts, falling
    /// back to the SAT ladder when the node limit trips. Wins on
    /// control-dominated cones where BDDs stay small; loses badly on
    /// arithmetic.
    BddFirst,
    /// Never consult the BDD engine, even as a fallback.
    SatOnly,
}

impl EngineMode {
    /// Parses the `--engine-policy` CLI value.
    pub fn parse(text: &str) -> Option<EngineMode> {
        match text {
            "default" | "auto" => Some(EngineMode::Auto),
            "bdd-first" => Some(EngineMode::BddFirst),
            "sat-only" => Some(EngineMode::SatOnly),
            _ => None,
        }
    }

    /// The canonical CLI/report spelling.
    pub fn name(&self) -> &'static str {
        match self {
            EngineMode::Auto => "default",
            EngineMode::BddFirst => "bdd-first",
            EngineMode::SatOnly => "sat-only",
        }
    }
}

/// The full per-pair engine-selection policy a sweep runs with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EnginePolicy {
    /// Route each fanin region's pairs through one long-lived
    /// assumption-scoped SAT solver (shared cone encoding, learnt
    /// clauses retained across the region's miters). `false` falls
    /// back to a cold solver per pair — the `--no-incremental` escape
    /// hatch, and the baseline the parity tests compare against.
    pub incremental: bool,
    /// Engine ordering for each pair.
    pub mode: EngineMode,
    /// Region-solver restart threshold, as a multiple of the solver's
    /// post-seeding clause-database footprint. Once a region solver's
    /// clause database grows past `baseline × rebuild_bloat`, the
    /// engine folds its totals into the run accounting and rebuilds it
    /// from the region's seed equivalences — trading the warm learnt
    /// clauses for bounded memory. `0` disables restarts (the
    /// default): a region solver lives for the whole sweep.
    pub rebuild_bloat: u32,
}

impl Default for EnginePolicy {
    /// Incremental region solvers with the classical SAT-then-BDD
    /// order and no bloat-triggered restarts.
    fn default() -> Self {
        EnginePolicy {
            incremental: true,
            mode: EngineMode::Auto,
            rebuild_bloat: 0,
        }
    }
}

impl EnginePolicy {
    /// True when the BDD engine should run *before* the SAT ladder
    /// for a pair (never under certification — BDD answers carry no
    /// DRAT certificate).
    pub fn bdd_primary(&self, certify: bool) -> bool {
        self.mode == EngineMode::BddFirst && !certify
    }

    /// True when the BDD engine may run as the post-ladder fallback.
    pub fn bdd_fallback(&self, node_limit: usize, certify: bool) -> bool {
        self.mode != EngineMode::SatOnly && node_limit > 0 && !certify
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_cli_spellings() {
        assert_eq!(EngineMode::parse("default"), Some(EngineMode::Auto));
        assert_eq!(EngineMode::parse("auto"), Some(EngineMode::Auto));
        assert_eq!(EngineMode::parse("bdd-first"), Some(EngineMode::BddFirst));
        assert_eq!(EngineMode::parse("sat-only"), Some(EngineMode::SatOnly));
        assert_eq!(EngineMode::parse("fastest"), None);
        for mode in [EngineMode::Auto, EngineMode::BddFirst, EngineMode::SatOnly] {
            assert_eq!(EngineMode::parse(mode.name()), Some(mode), "round trip");
        }
    }

    #[test]
    fn default_policy_matches_classical_sweeping() {
        let p = EnginePolicy::default();
        assert!(p.incremental);
        assert_eq!(p.mode, EngineMode::Auto);
        assert!(!p.bdd_primary(false));
        assert!(p.bdd_fallback(1_000, false), "fallback behind a node limit");
        assert!(!p.bdd_fallback(0, false), "no node limit, no fallback");
    }

    #[test]
    fn certification_always_suppresses_bdds() {
        let p = EnginePolicy {
            mode: EngineMode::BddFirst,
            ..EnginePolicy::default()
        };
        assert!(p.bdd_primary(false));
        assert!(!p.bdd_primary(true), "BDD verdicts cannot be certified");
        assert!(!p.bdd_fallback(1_000, true));
    }

    #[test]
    fn sat_only_never_consults_bdds() {
        let p = EnginePolicy {
            incremental: false,
            mode: EngineMode::SatOnly,
            ..EnginePolicy::default()
        };
        assert!(!p.bdd_primary(false));
        assert!(!p.bdd_fallback(usize::MAX, false));
    }
}
