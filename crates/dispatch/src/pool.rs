//! The persistent worker pool behind every parallel phase.
//!
//! Before this module existed, each parallel simulation call spawned
//! fresh OS threads through [`std::thread::scope`] — at tens of
//! thousands of `simulate_lanes` calls per sweep, thread creation and
//! teardown dominated the supposed speedup and produced *negative*
//! scaling. The pool fixes that by paying the spawn cost exactly once
//! per process: workers are born at first use, park on a condvar when
//! idle, and drain a shared FIFO of lifetime-erased tasks forever.
//!
//! # Scoped execution
//!
//! [`WorkerPool::scope`] gives borrowed closures the same safety story
//! as `std::thread::scope` on top of the persistent threads: tasks may
//! capture `'env` references because the scope *always* joins every
//! task it spawned before returning — even when the scope body or a
//! task panics. Internally each task is boxed, its lifetime erased,
//! and tagged with its scope; the tag is what makes the join sound.
//!
//! # The caller helps
//!
//! A waiting scope does not block while its own tasks sit in the
//! queue: it pops and runs them inline (newest first, mirroring the
//! owner end of a work-stealing deque). Two consequences:
//!
//! * A pool with **zero** worker threads is fully functional — every
//!   task runs on the caller during the wait. `shared_pool()` is
//!   sized to `cores - 1` for exactly this reason: the caller is the
//!   remaining core.
//! * Nested scopes cannot deadlock. A task that opens its own scope
//!   helps with its own subtasks, so some thread always makes
//!   progress.
//!
//! # Panics
//!
//! A panicking task never takes a worker down: the payload is caught,
//! stored on the scope, and re-thrown on the *scope caller's* thread
//! once every sibling task has finished (first payload wins). Layers
//! that need finer-grained isolation — the proof dispatcher's
//! per-job quarantine — keep their own `catch_unwind` inside the task.

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::mem;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// A lifetime-erased task. Soundness: the closure really borrows
/// `'env` data, and the owning [`Scope`] refuses to end before the
/// task has run to completion (or the pool dropped it at shutdown
/// while still counting it as finished).
type Task = Box<dyn FnOnce() + Send>;

/// Per-scope join state shared by the scope handle, the queue entries
/// and the workers executing its tasks.
struct ScopeState {
    /// Tasks spawned and not yet finished.
    pending: Mutex<usize>,
    /// Signalled each time `pending` reaches zero.
    done: Condvar,
    /// First panic payload from any task of this scope.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl ScopeState {
    fn new() -> Arc<ScopeState> {
        Arc::new(ScopeState {
            pending: Mutex::new(0),
            done: Condvar::new(),
            panic: Mutex::new(None),
        })
    }

    /// Runs one task of this scope, absorbing its panic into the
    /// scope and bookkeeping the pending count.
    fn run(self: &Arc<Self>, task: Task) {
        if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
            let mut slot = self.panic.lock().expect("scope panic slot poisoned");
            slot.get_or_insert(payload);
        }
        let mut pending = self.pending.lock().expect("scope pending poisoned");
        *pending -= 1;
        if *pending == 0 {
            self.done.notify_all();
        }
    }
}

/// One queue entry: the task plus the scope it joins against.
struct QueuedTask {
    scope: Arc<ScopeState>,
    task: Task,
}

struct PoolShared {
    /// FIFO of queued tasks; workers pop the front, helping scope
    /// callers pop their own tasks from the back.
    queue: Mutex<(VecDeque<QueuedTask>, bool)>,
    /// Signalled when the queue gains a task or shutdown flips.
    available: Condvar,
    /// Tasks handed to the pool over its lifetime (diagnostics; the
    /// small-input fast path is tested against this staying flat).
    dispatched: AtomicU64,
}

/// A fixed-size pool of persistent worker threads executing scoped
/// tasks (see the module docs).
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Creates a pool with exactly `threads` worker threads. Zero is
    /// legal: every task then runs on the thread that waits on its
    /// scope.
    pub fn new(threads: usize) -> WorkerPool {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new((VecDeque::new(), false)),
            available: Condvar::new(),
            dispatched: AtomicU64::new(0),
        });
        let threads = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("simgen-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool { shared, threads }
    }

    /// Number of worker threads (the caller of a scope is one more).
    pub fn threads(&self) -> usize {
        self.threads.len()
    }

    /// Total tasks ever enqueued on this pool.
    pub fn tasks_dispatched(&self) -> u64 {
        self.shared.dispatched.load(Ordering::Relaxed)
    }

    /// Runs `body` with a [`Scope`] on which borrowed tasks can be
    /// spawned, then joins every spawned task before returning.
    ///
    /// # Panics
    ///
    /// Re-raises the body's panic, or (if the body succeeded) the
    /// first panic of any spawned task — in both cases only after all
    /// tasks finished, so no borrow escapes.
    pub fn scope<'env, F, R>(&self, body: F) -> R
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        let scope = Scope {
            pool: self,
            state: ScopeState::new(),
            _env: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| body(&scope)));
        // Join unconditionally: tasks hold `'env` borrows and must
        // not outlive this frame even when `body` panicked.
        scope.wait();
        match result {
            Ok(value) => {
                let payload = scope
                    .state
                    .panic
                    .lock()
                    .expect("scope panic slot poisoned")
                    .take();
                if let Some(payload) = payload {
                    resume_unwind(payload);
                }
                value
            }
            Err(payload) => resume_unwind(payload),
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut queue = self.shared.queue.lock().expect("pool queue poisoned");
            queue.1 = true;
        }
        self.shared.available.notify_all();
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let entry = {
            let mut guard = shared.queue.lock().expect("pool queue poisoned");
            loop {
                if let Some(entry) = guard.0.pop_front() {
                    break entry;
                }
                if guard.1 {
                    return;
                }
                guard = shared.available.wait(guard).expect("pool queue poisoned");
            }
        };
        entry.scope.run(entry.task);
    }
}

/// Spawn handle passed to [`WorkerPool::scope`] bodies.
///
/// The `'env` parameter is invariant, pinning the borrow lifetime of
/// spawned closures to the environment of the `scope` call — the same
/// variance trick `std::thread::scope` uses.
pub struct Scope<'pool, 'env> {
    pool: &'pool WorkerPool,
    state: Arc<ScopeState>,
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'pool, 'env> Scope<'pool, 'env> {
    /// Enqueues `task` on the pool. It may borrow from `'env`; the
    /// scope joins it before those borrows can end.
    pub fn spawn<F>(&self, task: F)
    where
        F: FnOnce() + Send + 'env,
    {
        {
            let mut pending = self.state.pending.lock().expect("scope pending poisoned");
            *pending += 1;
        }
        let task: Box<dyn FnOnce() + Send + 'env> = Box::new(task);
        // SAFETY: the closure's `'env` borrows stay alive until
        // `Scope::wait` has observed the task finished, which happens
        // before `WorkerPool::scope` returns — the erased lifetime is
        // never actually exceeded.
        let task: Task = unsafe { mem::transmute(task) };
        self.pool.shared.dispatched.fetch_add(1, Ordering::Relaxed);
        {
            let mut guard = self.pool.shared.queue.lock().expect("pool queue poisoned");
            guard.0.push_back(QueuedTask {
                scope: Arc::clone(&self.state),
                task,
            });
        }
        self.pool.shared.available.notify_one();
    }

    /// Blocks until every task spawned on this scope has finished,
    /// running queued tasks of *this scope* inline while any remain
    /// (the caller-helps loop that makes a 0-worker pool viable and
    /// nested scopes deadlock-free).
    fn wait(&self) {
        loop {
            // Help: claim one of our own queued tasks, newest first.
            let mine = {
                let mut guard = self.pool.shared.queue.lock().expect("pool queue poisoned");
                let pos = guard
                    .0
                    .iter()
                    .rposition(|q| Arc::ptr_eq(&q.scope, &self.state));
                pos.and_then(|p| guard.0.remove(p))
            };
            if let Some(entry) = mine {
                entry.scope.run(entry.task);
                continue;
            }
            // Nothing of ours queued: the rest is running on workers.
            let mut pending = self.state.pending.lock().expect("scope pending poisoned");
            while *pending != 0 {
                pending = self
                    .state
                    .done
                    .wait(pending)
                    .expect("scope pending poisoned");
            }
            return;
        }
    }
}

/// The process-wide pool every parallel phase shares, sized to
/// `available_parallelism - 1` workers (the scope caller contributes
/// the remaining core). `SIMGEN_POOL_THREADS` overrides the size —
/// useful for exercising multi-worker scheduling on small machines.
pub fn shared_pool() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(|| {
        let threads = std::env::var("SIMGEN_POOL_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map_or(1, usize::from)
                    .saturating_sub(1)
            });
        WorkerPool::new(threads)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn scope_joins_all_tasks() {
        let pool = WorkerPool::new(2);
        let hits = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..64 {
                s.spawn(|| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 64);
        assert_eq!(pool.tasks_dispatched(), 64);
    }

    #[test]
    fn zero_worker_pool_runs_everything_on_the_caller() {
        let pool = WorkerPool::new(0);
        let caller = std::thread::current().id();
        let hits = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    assert_eq!(std::thread::current().id(), caller);
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn tasks_can_borrow_the_environment() {
        let pool = WorkerPool::new(2);
        let mut results = vec![0u64; 4];
        let chunks: Vec<&mut u64> = results.iter_mut().collect();
        pool.scope(|s| {
            for (i, slot) in chunks.into_iter().enumerate() {
                s.spawn(move || *slot = (i as u64 + 1) * 10);
            }
        });
        assert_eq!(results, vec![10, 20, 30, 40]);
    }

    #[test]
    fn pool_is_reusable_across_scopes() {
        let pool = WorkerPool::new(1);
        for round in 0..32u64 {
            let sum = Mutex::new(0u64);
            pool.scope(|s| {
                for i in 0..4 {
                    let sum = &sum;
                    s.spawn(move || *sum.lock().unwrap() += round + i);
                }
            });
            assert_eq!(*sum.lock().unwrap(), 4 * round + 6);
        }
    }

    #[test]
    fn nested_scopes_complete() {
        let pool = WorkerPool::new(1);
        let total = AtomicUsize::new(0);
        pool.scope(|outer| {
            for _ in 0..3 {
                outer.spawn(|| {
                    // Each outer task opens its own scope on the same
                    // pool; the caller-helps loop keeps it live even
                    // though every worker may be busy.
                    shared_pool().scope(|inner| {
                        for _ in 0..3 {
                            inner.spawn(|| {
                                total.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 9);
    }

    #[test]
    fn task_panic_propagates_after_join() {
        let pool = WorkerPool::new(2);
        let finished = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("task boom"));
                for _ in 0..8 {
                    s.spawn(|| {
                        finished.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        let payload = result.expect_err("scope must re-raise the task panic");
        let message = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(message, "task boom");
        // Every sibling still ran: the join happens before the rethrow.
        assert_eq!(finished.load(Ordering::Relaxed), 8);
        // The pool survives and keeps executing.
        let after = AtomicUsize::new(0);
        pool.scope(|s| {
            s.spawn(|| {
                after.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(after.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn body_panic_still_joins_spawned_tasks() {
        let pool = WorkerPool::new(1);
        let finished = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                for _ in 0..4 {
                    s.spawn(|| {
                        finished.fetch_add(1, Ordering::Relaxed);
                    });
                }
                panic!("body boom");
            });
        }));
        assert!(result.is_err());
        assert_eq!(finished.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn shared_pool_is_a_singleton() {
        let a = shared_pool() as *const WorkerPool;
        let b = shared_pool() as *const WorkerPool;
        assert_eq!(a, b);
    }
}
