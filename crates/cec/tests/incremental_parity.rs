//! Incremental-vs-cold solver parity (docs/solving.md).
//!
//! The assumption-scoped region solvers are a pure efficiency device:
//! routing a region's pairs through one long-lived solver must change
//! *nothing* observable except effort counters. This suite holds the
//! sweeper to that contract on a workload with several independent
//! fanin regions:
//!
//! 1. **Verdict parity**: incremental and cold runs prove the same
//!    classes, disprove the same pairs, leave the same residue.
//! 2. **Report parity**: engine-stripped `RunReport`s are
//!    byte-identical between the two modes and across `--jobs` 1/2/4,
//!    with and without `--certify`.
//! 3. **The win is real**: the incremental run reports
//!    `clauses_reused > 0` and spends strictly fewer solver conflicts
//!    than the cold run on the same workload.
//!
//! The configs here deliberately leave `budget_schedule` unset: a
//! multi-attempt ladder can resolve a pair at a different rung warm
//! than cold, which moves `sat.calls` — a field that survives
//! engine-stripping (the caveat documented in docs/solving.md).

use simgen_cec::{
    design_info, sweep_run_report, Deadline, EnginePolicy, ParallelSweeper, RegionMap, RunMeta,
    SweepConfig, SweepReport,
};
use simgen_core::{SimGen, SimGenConfig};
use simgen_mapping::map_to_luts;
use simgen_netlist::{miter::combine, LutNetwork, NodeId};
use simgen_obs::{report::strip_engine_dependent, Counter, Json, Observer};
use simgen_workloads::{build_aig, rewrite::restructure};

/// One benchmark miter'd against its restructured self: a block with
/// plenty of provable pairs, all sharing primary inputs.
fn miter_of(name: &str, seed: u64) -> LutNetwork {
    let aig = build_aig(name).expect("known benchmark");
    let variant = restructure(&aig, 0.4, seed);
    let left = map_to_luts(&aig, 6);
    let right = map_to_luts(&variant, 6);
    combine(&left, &right).expect("matched interfaces").network
}

/// Appends `src` into `dst` as a structurally disjoint island: fresh
/// PIs, no shared nodes, so its cones land in their own fanin region.
fn append_island(dst: &mut LutNetwork, src: &LutNetwork, tag: &str) {
    let mut map: Vec<Option<NodeId>> = vec![None; src.len()];
    for node in src.node_ids() {
        let new = if src.is_pi(node) {
            dst.add_pi(format!("{tag}_pi{}", node.index()))
        } else {
            let fanins: Vec<NodeId> = src
                .fanins(node)
                .iter()
                .map(|f| map[f.index()].expect("topological order"))
                .collect();
            let tt = *src.truth_table(node).expect("LUT node");
            dst.add_lut(fanins, tt).expect("valid LUT")
        };
        map[node.index()] = Some(new);
    }
    for po in src.pos() {
        let driver = map[po.node.index()].expect("driver mapped");
        dst.add_po(driver, format!("{tag}_{}", po.name));
    }
}

/// Two disjoint benchmark miters in one network — at least two fanin
/// regions, each with many candidate pairs for the region solver to
/// warm-start across.
fn multi_region_workload() -> LutNetwork {
    let mut net = miter_of("e64", 11);
    let second = miter_of("dec", 37);
    append_island(&mut net, &second, "dec");
    net
}

fn config(incremental: bool, jobs: usize, certify: bool) -> SweepConfig {
    SweepConfig {
        guided_iterations: 2,
        seed: 11,
        jobs,
        certify,
        engine: EnginePolicy {
            incremental,
            ..EnginePolicy::default()
        },
        ..SweepConfig::default()
    }
}

fn run(net: &LutNetwork, cfg: SweepConfig) -> (SweepReport, Observer) {
    let mut gen = SimGen::new(SimGenConfig::default().with_seed(11));
    let mut obs = Observer::enabled();
    let report =
        ParallelSweeper::new(cfg).run_observed(net, &mut gen, &Deadline::never(), &mut obs);
    (report, obs)
}

/// The engine-stripped deterministic form of a run's `RunReport`.
fn stripped_report(
    net: &LutNetwork,
    cfg: &SweepConfig,
    report: &SweepReport,
    obs: &Observer,
) -> String {
    let meta = RunMeta {
        command: "sweep".to_string(),
        argv: vec!["sweep".to_string(), "workload.blif".to_string()],
        design: design_info(net, "workload", "workload.blif"),
    };
    let run = sweep_run_report(meta, cfg, report, obs);
    simgen_obs::RunReport::validate(&run.to_json()).expect("report validates");
    let mut json = Json::parse(&run.deterministic_json()).expect("own JSON parses");
    strip_engine_dependent(&mut json);
    json.to_pretty()
}

/// Sanity: the workload really spans more than one fanin region, so
/// the incremental sweeper exercises several independent solvers.
#[test]
fn workload_spans_multiple_regions() {
    let net = multi_region_workload();
    let mut regions = RegionMap::new(&net);
    let keys: std::collections::HashSet<usize> = net
        .node_ids()
        .filter(|&n| !net.is_pi(n))
        .map(|n| regions.key(n, n))
        .collect();
    assert!(
        keys.len() >= 2,
        "expected at least two fanin regions, got {}",
        keys.len()
    );
}

/// Verdict and engine-stripped report parity between solver modes,
/// across worker counts, with and without certification.
#[test]
fn incremental_and_cold_reports_are_byte_identical() {
    let net = multi_region_workload();
    for certify in [false, true] {
        let mut forms: Vec<(String, String)> = Vec::new();
        let mut baseline: Option<SweepReport> = None;
        for incremental in [true, false] {
            for jobs in [1usize, 2, 4] {
                let cfg = config(incremental, jobs, certify);
                let (report, obs) = run(&net, cfg);
                assert!(!report.interrupted, "nothing may time out");
                assert_eq!(report.stats.certification_failures, 0);
                match &baseline {
                    None => baseline = Some(report.clone()),
                    Some(first) => {
                        let label =
                            format!("certify={certify} incremental={incremental} jobs={jobs}");
                        assert_eq!(report.proven_classes, first.proven_classes, "{label}");
                        assert_eq!(report.unresolved, first.unresolved, "{label}");
                        assert_eq!(
                            report.stats.proved_equivalent, first.stats.proved_equivalent,
                            "{label}"
                        );
                        assert_eq!(report.stats.disproved, first.stats.disproved, "{label}");
                    }
                }
                forms.push((
                    format!("certify={certify} incremental={incremental} jobs={jobs}"),
                    stripped_report(&net, &cfg, &report, &obs),
                ));
            }
        }
        let (first_label, first_form) = &forms[0];
        for (label, form) in &forms[1..] {
            assert_eq!(
                form, first_form,
                "stripped report for {label} diverges from {first_label}"
            );
        }
        assert!(
            baseline.expect("ran").stats.proved_equivalent > 0,
            "workload sanity: the sweep proves real equivalences"
        );
    }
}

/// The point of the whole exercise: warm region solvers reuse learnt
/// clauses and resolve the workload with strictly fewer conflicts
/// than cold per-pair solving.
#[test]
fn incremental_mode_reuses_clauses_and_saves_conflicts() {
    let net = multi_region_workload();
    let (warm, warm_obs) = run(&net, config(true, 2, false));
    let (cold, cold_obs) = run(&net, config(false, 2, false));
    assert_eq!(warm.proven_classes, cold.proven_classes, "verdict parity");

    assert!(
        warm_obs.recorder.get(Counter::ClausesReused) > 0,
        "warm runs must inherit learnt clauses across a region's pairs"
    );
    assert!(
        warm_obs.recorder.get(Counter::WarmSolves) > 0,
        "later pairs in a region warm-start"
    );
    assert!(
        warm_obs.recorder.get(Counter::ScopesOpened) >= warm.stats.sat_calls,
        "every SAT-resolved pair opens a scope"
    );
    assert_eq!(
        cold_obs.recorder.get(Counter::ClausesReused),
        0,
        "cold solvers start empty"
    );
    assert_eq!(cold_obs.recorder.get(Counter::WarmSolves), 0);

    assert!(
        warm.stats.solver.conflicts < cold.stats.solver.conflicts,
        "incremental solving must save conflicts: warm {} vs cold {}",
        warm.stats.solver.conflicts,
        cold.stats.solver.conflicts
    );
}
