//! Cross-engine parity: the SAT and BDD proof engines must agree on
//! every resolved query, and the sweep must produce identical proven
//! equivalences wherever BDDs stay within their node limit.

use simgen_cec::{
    BddProver, EquivProver, PairProver, ProofEngine, ProveOutcome, SweepConfig, Sweeper,
};
use simgen_core::{SimGen, SimGenConfig};
use simgen_mapping::map_to_luts;
use simgen_netlist::NodeId;
use simgen_workloads::{build_aig, rewrite::restructure};

/// A moderate CEC-style network with many truly equivalent pairs.
fn test_network() -> simgen_netlist::LutNetwork {
    let aig = build_aig("e64").expect("known benchmark");
    let variant = restructure(&aig, 0.5, 77);
    let left = map_to_luts(&aig, 6);
    let right = map_to_luts(&variant, 6);
    simgen_netlist::miter::combine(&left, &right)
        .expect("matched interfaces")
        .network
}

#[test]
fn provers_agree_pairwise() {
    let net = test_network();
    let luts: Vec<NodeId> = net.node_ids().filter(|&n| !net.is_pi(n)).collect();
    let mut sat = PairProver::new(&net);
    let mut bdd = BddProver::new(&net, 5_000_000);
    // A deterministic scatter of pairs across the network.
    for k in 0..40usize {
        let a = luts[(k * 7) % luts.len()];
        let b = luts[(k * 13 + 5) % luts.len()];
        let ra = EquivProver::prove(&mut sat, a, b, None);
        let rb = EquivProver::prove(&mut bdd, a, b, None);
        match (&ra, &rb) {
            (ProveOutcome::Equivalent, ProveOutcome::Equivalent) => {}
            (ProveOutcome::Counterexample(ca), ProveOutcome::Counterexample(cb)) => {
                // Different witnesses are fine; both must distinguish.
                for (label, c) in [("sat", ca), ("bdd", cb)] {
                    let vals = net.eval(c);
                    assert_ne!(
                        vals[a.index()],
                        vals[b.index()],
                        "{label} witness fails for pair {k}"
                    );
                }
            }
            other => panic!("engines disagree on pair {k}: {other:?}"),
        }
    }
    assert_eq!(EquivProver::calls(&sat), 40);
    assert_eq!(EquivProver::calls(&bdd), 40);
}

#[test]
fn sweeps_agree_on_proven_sets() {
    let net = test_network();
    let run = |engine: ProofEngine| {
        let cfg = SweepConfig {
            proof: engine,
            ..SweepConfig::default()
        };
        let mut gen = SimGen::new(SimGenConfig::default().with_seed(3));
        Sweeper::new(cfg).run(&net, &mut gen)
    };
    let sat = run(ProofEngine::Sat);
    let bdd = run(ProofEngine::Bdd {
        node_limit: 5_000_000,
    });
    // The engines produce different counterexamples, so the number of
    // disproof calls may differ; the *semantic* outcome — which nodes
    // end up proven equivalent — must not.
    assert_eq!(sat.stats.proved_equivalent, bdd.stats.proved_equivalent);
    let norm = |mut classes: Vec<Vec<NodeId>>| {
        for c in classes.iter_mut() {
            c.sort();
        }
        classes.sort();
        classes
    };
    assert_eq!(
        norm(sat.proven_classes),
        norm(bdd.proven_classes),
        "identical equivalence structure from both engines"
    );
}
