//! Cross-engine parity: the SAT and BDD proof engines must agree on
//! every resolved query, and the sweep must produce identical proven
//! equivalences wherever BDDs stay within their node limit.

use simgen_cec::{
    check_equivalence_under, design_info, sweep_run_report, BddProver, BudgetSchedule, CecVerdict,
    Deadline, EquivProver, InconclusiveReason, PairProver, ParallelSweeper, ProofEngine,
    ProveOutcome, RunMeta, SweepConfig, Sweeper,
};
use simgen_core::{SimGen, SimGenConfig};
use simgen_mapping::map_to_luts;
use simgen_netlist::NodeId;
use simgen_workloads::{build_aig, rewrite::restructure};

/// A moderate CEC-style network with many truly equivalent pairs.
fn test_network() -> simgen_netlist::LutNetwork {
    let aig = build_aig("e64").expect("known benchmark");
    let variant = restructure(&aig, 0.5, 77);
    let left = map_to_luts(&aig, 6);
    let right = map_to_luts(&variant, 6);
    simgen_netlist::miter::combine(&left, &right)
        .expect("matched interfaces")
        .network
}

#[test]
fn provers_agree_pairwise() {
    let net = test_network();
    let luts: Vec<NodeId> = net.node_ids().filter(|&n| !net.is_pi(n)).collect();
    let mut sat = PairProver::new(&net);
    let mut bdd = BddProver::new(&net, 5_000_000);
    // A deterministic scatter of pairs across the network.
    for k in 0..40usize {
        let a = luts[(k * 7) % luts.len()];
        let b = luts[(k * 13 + 5) % luts.len()];
        let ra = EquivProver::prove(&mut sat, a, b, None);
        let rb = EquivProver::prove(&mut bdd, a, b, None);
        match (&ra, &rb) {
            (ProveOutcome::Equivalent, ProveOutcome::Equivalent) => {}
            (ProveOutcome::Counterexample(ca), ProveOutcome::Counterexample(cb)) => {
                // Different witnesses are fine; both must distinguish.
                for (label, c) in [("sat", ca), ("bdd", cb)] {
                    let vals = net.eval(c);
                    assert_ne!(
                        vals[a.index()],
                        vals[b.index()],
                        "{label} witness fails for pair {k}"
                    );
                }
            }
            other => panic!("engines disagree on pair {k}: {other:?}"),
        }
    }
    assert_eq!(EquivProver::calls(&sat), 40);
    assert_eq!(EquivProver::calls(&bdd), 40);
}

#[test]
fn sweeps_agree_on_proven_sets() {
    let net = test_network();
    let run = |engine: ProofEngine| {
        let cfg = SweepConfig {
            proof: engine,
            ..SweepConfig::default()
        };
        let mut gen = SimGen::new(SimGenConfig::default().with_seed(3));
        Sweeper::new(cfg).run(&net, &mut gen)
    };
    let sat = run(ProofEngine::Sat);
    let bdd = run(ProofEngine::Bdd {
        node_limit: 5_000_000,
    });
    // The engines produce different counterexamples, so the number of
    // disproof calls may differ; the *semantic* outcome — which nodes
    // end up proven equivalent — must not.
    assert_eq!(sat.stats.proved_equivalent, bdd.stats.proved_equivalent);
    let norm = |mut classes: Vec<Vec<NodeId>>| {
        for c in classes.iter_mut() {
            c.sort();
        }
        classes.sort();
        classes
    };
    assert_eq!(
        norm(sat.proven_classes),
        norm(bdd.proven_classes),
        "identical equivalence structure from both engines"
    );
}

/// A seeded sweep workload: a benchmark miter'd against its own
/// restructured variant, guaranteeing plenty of true equivalences.
fn workload(name: &str, seed: u64) -> simgen_netlist::LutNetwork {
    let aig = build_aig(name).expect("known benchmark");
    let variant = restructure(&aig, 0.4, seed);
    let left = map_to_luts(&aig, 6);
    let right = map_to_luts(&variant, 6);
    simgen_netlist::miter::combine(&left, &right)
        .expect("matched interfaces")
        .network
}

fn norm(mut classes: Vec<Vec<NodeId>>) -> Vec<Vec<NodeId>> {
    for c in classes.iter_mut() {
        c.sort();
    }
    classes.sort();
    classes
}

/// The dispatch engine must reproduce the serial sweeper's semantic
/// outcome — same proven equivalence structure, same proof-outcome
/// counts — at every worker count, across a spread of seeded workload
/// circuits.
#[test]
fn parallel_sweeps_match_serial_across_workloads() {
    let circuits = [
        ("e64", 11u64),
        ("e64", 19),
        ("priority", 23),
        ("priority", 31),
        ("dec", 37),
    ];
    for (name, seed) in circuits {
        let net = workload(name, seed);
        let base = SweepConfig {
            guided_iterations: 5,
            seed,
            ..SweepConfig::default()
        };
        let mut gen = SimGen::new(SimGenConfig::default().with_seed(seed));
        let serial = Sweeper::new(base).run(&net, &mut gen);
        let mut parallel_reports = Vec::new();
        for jobs in [1usize, 2, 4] {
            let cfg = SweepConfig {
                jobs,
                budget_schedule: Some(BudgetSchedule {
                    initial: 2_000,
                    multiplier: 50,
                    attempts: 2,
                    bdd_node_limit: 0,
                }),
                ..base
            };
            let mut gen = SimGen::new(SimGenConfig::default().with_seed(seed));
            let par = ParallelSweeper::new(cfg).run(&net, &mut gen);
            assert_eq!(
                norm(par.proven_classes.clone()),
                norm(serial.proven_classes.clone()),
                "{name}: parallel jobs={jobs} must prove the same classes"
            );
            assert_eq!(
                par.stats.proved_equivalent, serial.stats.proved_equivalent,
                "{name} jobs={jobs}"
            );
            assert_eq!(
                par.stats.aborted, 0,
                "{name} jobs={jobs}: nothing may time out"
            );
            assert_eq!(
                serial.stats.aborted, 0,
                "{name}: serial baseline fully resolves"
            );
            parallel_reports.push(par);
        }
        // Across worker counts the parallel reports are identical in
        // every deterministic respect (not just up to reordering).
        let first = &parallel_reports[0];
        for (i, r) in parallel_reports.iter().enumerate().skip(1) {
            assert_eq!(r.proven_classes, first.proven_classes, "{name} report {i}");
            assert_eq!(r.unresolved, first.unresolved, "{name} report {i}");
            assert_eq!(
                r.stats.disproved, first.stats.disproved,
                "{name} report {i}"
            );
            assert_eq!(
                r.stats.sat_calls, first.stats.sat_calls,
                "{name} report {i}"
            );
            assert_eq!(
                r.patterns.num_patterns(),
                first.patterns.num_patterns(),
                "{name} report {i}"
            );
            let (da, db) = (
                r.stats.dispatch.as_ref().unwrap(),
                first.stats.dispatch.as_ref().unwrap(),
            );
            assert_eq!(da.rounds, db.rounds, "{name} report {i}");
            assert_eq!(da.total_proofs(), db.total_proofs(), "{name} report {i}");
            assert_eq!(
                da.total_escalations(),
                db.total_escalations(),
                "{name} report {i}"
            );
        }
    }
}

/// The observability layer must not weaken the scheduling-invariance
/// contract: a fully instrumented run serialized as a [`RunReport`]
/// and reduced to its deterministic form (timing `*_ms` fields and
/// scheduling keys stripped) is byte-identical for every worker count.
#[test]
fn run_reports_are_byte_identical_across_worker_counts() {
    for (name, seed) in [("e64", 11u64), ("priority", 23)] {
        let net = workload(name, seed);
        let base = SweepConfig {
            guided_iterations: 5,
            seed,
            ..SweepConfig::default()
        };
        let mut deterministic_forms = Vec::new();
        for jobs in [1usize, 2, 4] {
            let cfg = SweepConfig { jobs, ..base };
            let mut gen = SimGen::new(SimGenConfig::default().with_seed(seed));
            let mut obs = simgen_obs::Observer::enabled();
            let report = ParallelSweeper::new(cfg).run_observed(
                &net,
                &mut gen,
                &Deadline::never(),
                &mut obs,
            );
            let meta = RunMeta {
                command: "sweep".to_string(),
                argv: vec![
                    "sweep".to_string(),
                    format!("{name}.blif"),
                    "--jobs".to_string(),
                    jobs.to_string(),
                ],
                design: design_info(&net, name, &format!("{name}.blif")),
            };
            let run = sweep_run_report(meta, &cfg, &report, &obs);
            simgen_obs::RunReport::validate(&run.to_json()).expect("instrumented run validates");
            deterministic_forms.push(run.deterministic_json());
        }
        for (i, form) in deterministic_forms.iter().enumerate().skip(1) {
            assert_eq!(
                form, &deterministic_forms[0],
                "{name}: deterministic RunReport for jobs index {i} diverges"
            );
        }
    }
}

/// Same contract under an already-expired deadline: the interrupted
/// partial report keeps its deterministic form byte-identical across
/// `--jobs`, so anytime results stay comparable run-over-run.
#[test]
fn expired_deadline_run_reports_are_byte_identical() {
    let (name, seed) = ("e64", 11u64);
    let net = workload(name, seed);
    let base = SweepConfig {
        guided_iterations: 5,
        seed,
        ..SweepConfig::default()
    };
    let mut deterministic_forms = Vec::new();
    for jobs in [1usize, 2, 4] {
        let cfg = SweepConfig { jobs, ..base };
        let mut gen = SimGen::new(SimGenConfig::default().with_seed(seed));
        let mut obs = simgen_obs::Observer::enabled();
        let deadline = Deadline::after(std::time::Duration::ZERO);
        let report = ParallelSweeper::new(cfg).run_observed(&net, &mut gen, &deadline, &mut obs);
        assert!(report.interrupted, "jobs={jobs} must flag interruption");
        let meta = RunMeta {
            command: "sweep".to_string(),
            argv: vec!["sweep".to_string(), format!("{name}.blif")],
            design: design_info(&net, name, &format!("{name}.blif")),
        };
        let run = sweep_run_report(meta, &cfg, &report, &obs);
        simgen_obs::RunReport::validate(&run.to_json()).expect("interrupted run validates");
        assert_eq!(run.outcome.status, "interrupted");
        assert_eq!(run.outcome.exit_code, 2);
        deterministic_forms.push(run.deterministic_json());
    }
    for (i, form) in deterministic_forms.iter().enumerate().skip(1) {
        assert_eq!(
            form, &deterministic_forms[0],
            "deterministic interrupted RunReport for jobs index {i} diverges"
        );
    }
}

/// Anytime degradation is as scheduling-invariant as completion: under
/// an already-expired deadline, every worker count produces the same
/// partial sweep report, and the full CEC flow returns the same
/// `Inconclusive` verdict naming the same unresolved output pairs.
#[test]
fn expired_deadline_reports_are_identical_across_worker_counts() {
    for (name, seed) in [("e64", 11u64), ("priority", 23)] {
        let net = workload(name, seed);
        let base = SweepConfig {
            guided_iterations: 5,
            seed,
            ..SweepConfig::default()
        };
        let mut reports = Vec::new();
        for jobs in [1usize, 2, 4] {
            let cfg = SweepConfig { jobs, ..base };
            let mut gen = SimGen::new(SimGenConfig::default().with_seed(seed));
            let deadline = Deadline::after(std::time::Duration::ZERO);
            let par = ParallelSweeper::new(cfg).run_under(&net, &mut gen, &deadline);
            assert!(par.interrupted, "{name} jobs={jobs} must flag interruption");
            assert_eq!(
                par.stats.sat_calls, 0,
                "{name} jobs={jobs}: no proof may start past the deadline"
            );
            assert!(
                par.proven_classes.is_empty(),
                "{name} jobs={jobs}: partial results never claim unproven equivalences"
            );
            reports.push(par);
        }
        let first = &reports[0];
        for (i, r) in reports.iter().enumerate().skip(1) {
            assert_eq!(r.proven_classes, first.proven_classes, "{name} report {i}");
            assert_eq!(r.unresolved, first.unresolved, "{name} report {i}");
            assert_eq!(r.quarantined, first.quarantined, "{name} report {i}");
            assert_eq!(
                r.patterns.num_patterns(),
                first.patterns.num_patterns(),
                "{name} report {i}"
            );
        }

        // End-to-end flow: same Inconclusive verdict for every jobs value.
        let left = map_to_luts(&build_aig(name).expect("known benchmark"), 6);
        let right = map_to_luts(
            &restructure(&build_aig(name).expect("known benchmark"), 0.4, seed),
            6,
        );
        let mut verdicts = Vec::new();
        for jobs in [1usize, 2, 4] {
            let cfg = SweepConfig { jobs, ..base };
            let mut gen = SimGen::new(SimGenConfig::default().with_seed(seed));
            let deadline = Deadline::after(std::time::Duration::ZERO);
            let report = check_equivalence_under(&left, &right, &mut gen, cfg, &deadline)
                .expect("interfaces match");
            match &report.verdict {
                CecVerdict::Inconclusive {
                    unresolved_pairs,
                    reason,
                } => {
                    assert_eq!(*reason, InconclusiveReason::DeadlineExpired, "{name}");
                    assert_eq!(
                        unresolved_pairs.len(),
                        left.num_pos(),
                        "{name}: every output pair unresolved"
                    );
                    verdicts.push(unresolved_pairs.clone());
                }
                other => panic!("{name} jobs={jobs}: expected Inconclusive, got {other:?}"),
            }
        }
        assert!(
            verdicts.windows(2).all(|w| w[0] == w[1]),
            "{name}: identical unresolved sets across worker counts"
        );
    }
}
