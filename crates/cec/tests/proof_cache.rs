//! The content-addressed proof cache under both sweepers and the CEC
//! flow: warm runs answer from the cache, the trust policy rejects
//! poisoned entries, and the `cache_*` counters obey the same
//! `--jobs`-invariance contract as everything else in the report.

use simgen_cache::{pair_key, CacheEntry, CachedVerdict, ProofCache};
use simgen_cec::{
    check_equivalence_cached, CecVerdict, Deadline, ParallelSweeper, SweepConfig, Sweeper,
};
use simgen_core::{SimGen, SimGenConfig};
use simgen_netlist::{LutNetwork, NodeId, TruthTable};
use simgen_obs::{Counter, Observer};

/// A network with three provably-equivalent AND variants plus a
/// near-miss lookalike pair, so warm runs exercise both cached
/// equivalences and cached counterexamples.
fn mixed_net() -> LutNetwork {
    let mut net = LutNetwork::new();
    let pis: Vec<NodeId> = (0..6).map(|i| net.add_pi(format!("p{i}"))).collect();
    let (a, b) = (pis[0], pis[1]);
    let and1 = net.add_lut(vec![a, b], TruthTable::and2()).unwrap();
    let and2 = net.add_lut(vec![b, a], TruthTable::and2()).unwrap();
    let na = net.add_lut(vec![a], TruthTable::not1()).unwrap();
    let nb = net.add_lut(vec![b], TruthTable::not1()).unwrap();
    let nor = net.add_lut(vec![na, nb], TruthTable::or2()).unwrap();
    let and3 = net.add_lut(vec![nor], TruthTable::not1()).unwrap();
    // Lookalikes that weak simulation tends to collide.
    let f1 = net
        .add_lut(pis.clone(), TruthTable::from_fn(6, |m| m.count_ones() >= 3))
        .unwrap();
    let f2 = net
        .add_lut(
            pis.clone(),
            TruthTable::from_fn(6, |m| m.count_ones() >= 3 || m == 0b000011),
        )
        .unwrap();
    net.add_po(and1, "x");
    net.add_po(and2, "y");
    net.add_po(and3, "z");
    net.add_po(f1, "f1");
    net.add_po(f2, "f2");
    net
}

fn tight_cfg() -> SweepConfig {
    SweepConfig {
        random_rounds: 1,
        random_batch: 2,
        guided_iterations: 0,
        seed: 5,
        ..SweepConfig::default()
    }
}

#[test]
fn warm_serial_sweep_answers_from_the_cache() {
    let net = mixed_net();
    let cache = ProofCache::in_memory(1 << 20);
    let run = |cache: &ProofCache| {
        let mut gen = SimGen::new(SimGenConfig::default().with_seed(5));
        let mut obs = Observer::enabled();
        let report = Sweeper::new(tight_cfg()).run_cached(
            &net,
            &mut gen,
            &Deadline::never(),
            &mut obs,
            Some(cache),
        );
        (report, obs)
    };
    let (cold, cold_obs) = run(&cache);
    assert!(cold.stats.proved_equivalent >= 2, "workload sanity");
    assert_eq!(cold_obs.recorder.get(Counter::CacheHits), 0);
    assert!(cold_obs.recorder.get(Counter::CacheMisses) > 0);
    assert!(!cache.is_empty(), "cold run populates the cache");

    let (warm, warm_obs) = run(&cache);
    assert_eq!(warm.proven_classes, cold.proven_classes);
    assert_eq!(warm.stats.disproved, cold.stats.disproved);
    assert_eq!(warm.unresolved, cold.unresolved);
    assert_eq!(warm.stats.sat_calls, 0, "every pair answered by the cache");
    assert_eq!(
        warm_obs.recorder.get(Counter::CacheHits),
        cold_obs.recorder.get(Counter::CacheMisses),
        "warm hits cover exactly the cold misses"
    );
    assert_eq!(warm_obs.recorder.get(Counter::CacheMisses), 0);
    // Counterexample hits are replay-verified even without --certify.
    assert!(warm_obs.recorder.get(Counter::CacheReplays) >= warm.stats.disproved);
}

#[test]
fn warm_parallel_sweep_is_jobs_invariant_including_cache_counters() {
    let net = mixed_net();
    let cache = ProofCache::in_memory(1 << 20);
    // Warm the cache once, serially.
    let mut gen = SimGen::new(SimGenConfig::default().with_seed(5));
    Sweeper::new(tight_cfg()).run_cached(
        &net,
        &mut gen,
        &Deadline::never(),
        &mut Observer::disabled(),
        Some(&cache),
    );
    let entries_before = cache.len();

    let run = |jobs: usize| {
        let cfg = SweepConfig {
            jobs,
            ..tight_cfg()
        };
        let mut gen = SimGen::new(SimGenConfig::default().with_seed(5));
        let mut obs = Observer::enabled();
        let report = ParallelSweeper::new(cfg).run_cached(
            &net,
            &mut gen,
            &Deadline::never(),
            &mut obs,
            Some(&cache),
        );
        (report, obs)
    };
    let (r1, o1) = run(1);
    assert!(o1.recorder.get(Counter::CacheHits) > 0);
    assert_eq!(r1.stats.sat_calls, 0, "warm run dispatches nothing");
    for jobs in [2usize, 4] {
        let (rj, oj) = run(jobs);
        assert_eq!(rj.proven_classes, r1.proven_classes, "jobs={jobs}");
        assert_eq!(rj.unresolved, r1.unresolved, "jobs={jobs}");
        for c in [
            Counter::CacheHits,
            Counter::CacheMisses,
            Counter::CacheReplays,
            Counter::CacheEvictions,
        ] {
            assert_eq!(
                oj.recorder.get(c),
                o1.recorder.get(c),
                "jobs={jobs}: counter {} must be jobs-invariant",
                c.name()
            );
        }
        assert_eq!(cache.len(), entries_before, "warm runs add nothing");
    }
}

#[test]
fn structurally_identical_renumbered_network_still_hits() {
    let net_a = mixed_net();
    // The same logic rebuilt behind distractor nodes, shifting every id.
    let mut net_b = LutNetwork::new();
    let d0 = net_b.add_pi("d0");
    let d1 = net_b.add_pi("d1");
    let junk = net_b.add_lut(vec![d0, d1], TruthTable::xor2()).unwrap();
    net_b.add_po(junk, "junk");
    // Rebuild mixed_net by hand: same LUTs in the same order, but
    // every id shifted by the 3-node distractor prefix.
    let pis: Vec<NodeId> = (0..6).map(|i| net_b.add_pi(format!("p{i}"))).collect();
    let (a, b) = (pis[0], pis[1]);
    let and1 = net_b.add_lut(vec![a, b], TruthTable::and2()).unwrap();
    let and2 = net_b.add_lut(vec![b, a], TruthTable::and2()).unwrap();
    let na = net_b.add_lut(vec![a], TruthTable::not1()).unwrap();
    let nb = net_b.add_lut(vec![b], TruthTable::not1()).unwrap();
    let nor = net_b.add_lut(vec![na, nb], TruthTable::or2()).unwrap();
    let and3 = net_b.add_lut(vec![nor], TruthTable::not1()).unwrap();
    let f1 = net_b
        .add_lut(pis.clone(), TruthTable::from_fn(6, |m| m.count_ones() >= 3))
        .unwrap();
    let f2 = net_b
        .add_lut(
            pis.clone(),
            TruthTable::from_fn(6, |m| m.count_ones() >= 3 || m == 0b000011),
        )
        .unwrap();
    net_b.add_po(and1, "x");
    net_b.add_po(and2, "y");
    net_b.add_po(and3, "z");
    net_b.add_po(f1, "f1");
    net_b.add_po(f2, "f2");

    let cache = ProofCache::in_memory(1 << 20);
    let mut gen = SimGen::new(SimGenConfig::default().with_seed(5));
    let cold = Sweeper::new(tight_cfg()).run_cached(
        &net_a,
        &mut gen,
        &Deadline::never(),
        &mut Observer::disabled(),
        Some(&cache),
    );
    assert!(cold.stats.proved_equivalent >= 2);

    // Same sweep on the renumbered twin: the content addresses match,
    // so the cache answers despite every NodeId differing.
    let mut gen = SimGen::new(SimGenConfig::default().with_seed(5));
    let mut obs = Observer::enabled();
    let warm = Sweeper::new(tight_cfg()).run_cached(
        &net_b,
        &mut gen,
        &Deadline::never(),
        &mut obs,
        Some(&cache),
    );
    assert!(
        obs.recorder.get(Counter::CacheHits) > 0,
        "renumbered cones must still hit"
    );
    assert_eq!(warm.stats.proved_equivalent, cold.stats.proved_equivalent);
}

/// Poisoned entries must never change a verdict: a garbage DRAT blob
/// is evicted under `--certify` and the pair re-proved live; a bogus
/// "not equivalent" witness fails its replay and is evicted in *every*
/// mode.
#[test]
fn poisoned_entries_are_evicted_and_reproved() {
    let net = mixed_net();
    // The two AND variants are genuinely equivalent; find their pair
    // key and poison it both ways.
    let and1 = net.pos()[0].node;
    let and2 = net.pos()[1].node;
    let (key, support) = pair_key(&net, and1, and2);

    // A wrong "not equivalent" claim with an all-false witness.
    let cache = ProofCache::in_memory(1 << 20);
    cache.insert(
        key,
        CacheEntry::pair(CachedVerdict::NotEquivalent {
            witness: vec![false; support.len()],
        }),
    );
    let mut gen = SimGen::new(SimGenConfig::default().with_seed(5));
    let mut obs = Observer::enabled();
    let report = Sweeper::new(tight_cfg()).run_cached(
        &net,
        &mut gen,
        &Deadline::never(),
        &mut obs,
        Some(&cache),
    );
    assert!(
        obs.recorder.get(Counter::CacheEvictions) >= 1,
        "the poisoned entry must be evicted"
    );
    assert!(
        report
            .proven_classes
            .iter()
            .any(|c| c.contains(&and1) && c.contains(&and2)),
        "the live proof must override the poisoned witness"
    );

    // A garbage proof blob under --certify: evicted, re-proved, and
    // replaced by an entry whose proof the checker accepts.
    let cache = ProofCache::in_memory(1 << 20);
    cache.insert(
        key,
        CacheEntry::pair(CachedVerdict::Equivalent {
            proof: b"not a proof".to_vec(),
        }),
    );
    let certify_cfg = SweepConfig {
        certify: true,
        ..tight_cfg()
    };
    let mut gen = SimGen::new(SimGenConfig::default().with_seed(5));
    let mut obs = Observer::enabled();
    let report = Sweeper::new(certify_cfg).run_cached(
        &net,
        &mut gen,
        &Deadline::never(),
        &mut obs,
        Some(&cache),
    );
    assert!(obs.recorder.get(Counter::CacheEvictions) >= 1);
    assert_eq!(report.stats.certification_failures, 0);
    assert!(report
        .proven_classes
        .iter()
        .any(|c| c.contains(&and1) && c.contains(&and2)));

    // The replacement entry carries a real proof: a second certified
    // run replays it instead of proving live.
    let mut gen = SimGen::new(SimGenConfig::default().with_seed(5));
    let mut obs = Observer::enabled();
    let warm = Sweeper::new(certify_cfg).run_cached(
        &net,
        &mut gen,
        &Deadline::never(),
        &mut obs,
        Some(&cache),
    );
    assert_eq!(obs.recorder.get(Counter::CacheEvictions), 0);
    assert!(obs.recorder.get(Counter::CacheReplays) > 0);
    assert_eq!(warm.stats.sat_calls, 0);
    assert_eq!(warm.proven_classes, report.proven_classes);
}

/// Entries written by a plain run carry no proof, so a certified run
/// must not trust them: it evicts, re-proves, and upgrades the entry.
#[test]
fn certify_does_not_trust_unproven_entries() {
    let net = mixed_net();
    let cache = ProofCache::in_memory(1 << 20);
    // Plain warm-up: entries stored without DRAT blobs.
    let mut gen = SimGen::new(SimGenConfig::default().with_seed(5));
    Sweeper::new(tight_cfg()).run_cached(
        &net,
        &mut gen,
        &Deadline::never(),
        &mut Observer::disabled(),
        Some(&cache),
    );

    let certify_cfg = SweepConfig {
        certify: true,
        ..tight_cfg()
    };
    let mut gen = SimGen::new(SimGenConfig::default().with_seed(5));
    let mut obs = Observer::enabled();
    let certified = Sweeper::new(certify_cfg).run_cached(
        &net,
        &mut gen,
        &Deadline::never(),
        &mut obs,
        Some(&cache),
    );
    // Equivalences were evicted and re-proved with proofs; witnesses
    // replay fine and stay hits.
    assert!(obs.recorder.get(Counter::CacheEvictions) > 0);
    assert!(certified.stats.proved_equivalent >= 2);
    assert_eq!(certified.stats.certification_failures, 0);

    // Now the entries are certified: the next certified run is all hits.
    let mut gen = SimGen::new(SimGenConfig::default().with_seed(5));
    let mut obs = Observer::enabled();
    let warm = Sweeper::new(certify_cfg).run_cached(
        &net,
        &mut gen,
        &Deadline::never(),
        &mut obs,
        Some(&cache),
    );
    assert_eq!(warm.stats.sat_calls, 0);
    assert_eq!(obs.recorder.get(Counter::CacheMisses), 0);
    assert_eq!(warm.proven_classes, certified.proven_classes);
}

fn adder_pair() -> (LutNetwork, LutNetwork) {
    let mut n1 = LutNetwork::with_name("direct");
    let a = n1.add_pi("a");
    let b = n1.add_pi("b");
    let cin = n1.add_pi("cin");
    let s = n1
        .add_lut(
            vec![a, b, cin],
            TruthTable::from_fn(3, |m| m.count_ones() % 2 == 1),
        )
        .unwrap();
    let c = n1
        .add_lut(
            vec![a, b, cin],
            TruthTable::from_fn(3, |m| m.count_ones() >= 2),
        )
        .unwrap();
    n1.add_po(s, "sum");
    n1.add_po(c, "cout");

    let mut n2 = LutNetwork::with_name("gates");
    let a = n2.add_pi("a");
    let b = n2.add_pi("b");
    let cin = n2.add_pi("cin");
    let x1 = n2.add_lut(vec![a, b], TruthTable::xor2()).unwrap();
    let s = n2.add_lut(vec![x1, cin], TruthTable::xor2()).unwrap();
    let a1 = n2.add_lut(vec![a, b], TruthTable::and2()).unwrap();
    let a2 = n2.add_lut(vec![x1, cin], TruthTable::and2()).unwrap();
    let c = n2.add_lut(vec![a1, a2], TruthTable::or2()).unwrap();
    n2.add_po(s, "sum");
    n2.add_po(c, "cout");
    (n1, n2)
}

#[test]
fn cached_cec_flow_answers_output_proofs_from_the_cache() {
    let (n1, n2) = adder_pair();
    let cache = ProofCache::in_memory(1 << 20);
    let run = |cache: &ProofCache, certify: bool| {
        let cfg = SweepConfig {
            certify,
            ..SweepConfig::default()
        };
        let mut gen = SimGen::new(SimGenConfig::default());
        let mut obs = Observer::enabled();
        let report = check_equivalence_cached(
            &n1,
            &n2,
            &mut gen,
            cfg,
            &Deadline::never(),
            &mut obs,
            Some(cache),
        )
        .expect("interfaces match");
        (report, obs)
    };
    let (cold, cold_obs) = run(&cache, false);
    assert_eq!(cold.verdict, CecVerdict::Equivalent);
    assert!(cold_obs.recorder.get(Counter::CacheMisses) > 0);
    // Intra-run reuse: the sweep may have already cached the PO-pair
    // cones, so the cold run's output proofs are allowed to hit.
    assert!(
        cold.sweep_stats.sat_calls + cold.output_sat_calls >= 2,
        "someone must have done live SAT work on the cold run"
    );

    let (warm, warm_obs) = run(&cache, false);
    assert_eq!(warm.verdict, CecVerdict::Equivalent);
    assert_eq!(warm.output_sat_calls, 0, "PO pairs answered by the cache");
    assert_eq!(warm_obs.recorder.get(Counter::CacheMisses), 0);
    assert!(warm_obs.recorder.get(Counter::CacheHits) > 0);

    // A certified run on the same cache: plain entries carry no proof,
    // so they are evicted and re-proved with certificates...
    let (cert_cold, cert_cold_obs) = run(&cache, true);
    assert_eq!(cert_cold.verdict, CecVerdict::Equivalent);
    assert!(cert_cold_obs.recorder.get(Counter::CacheEvictions) > 0);
    // ...after which a certified run replays the stored proofs.
    let (cert_warm, cert_warm_obs) = run(&cache, true);
    assert_eq!(cert_warm.verdict, CecVerdict::Equivalent);
    assert_eq!(cert_warm.output_sat_calls, 0);
    assert!(cert_warm_obs.recorder.get(Counter::CacheReplays) > 0);
    assert_eq!(cert_warm_obs.recorder.get(Counter::CacheMisses), 0);
    assert_eq!(cert_warm.sweep_stats.certification_failures, 0);
}

#[test]
fn cached_flow_still_finds_counterexamples() {
    let (n1, mut n2) = adder_pair();
    let cout_node = n2.pos()[1].node;
    let broken = n2.add_lut(vec![cout_node], TruthTable::not1()).unwrap();
    let sum_node = n2.pos()[0].node;
    n2.clear_pos();
    n2.add_po(sum_node, "sum");
    n2.add_po(broken, "cout");
    let cache = ProofCache::in_memory(1 << 20);
    for round in 0..2 {
        let mut gen = SimGen::new(SimGenConfig::default());
        let mut obs = Observer::enabled();
        let report = check_equivalence_cached(
            &n1,
            &n2,
            &mut gen,
            SweepConfig::default(),
            &Deadline::never(),
            &mut obs,
            Some(&cache),
        )
        .expect("interfaces match");
        match report.verdict {
            CecVerdict::NotEquivalent { po_index, witness } => {
                assert_eq!(po_index, 1, "round {round}");
                assert_ne!(
                    n1.eval_pos(&witness)[1],
                    n2.eval_pos(&witness)[1],
                    "round {round}: witness must distinguish"
                );
            }
            other => panic!("round {round}: expected NotEquivalent, got {other:?}"),
        }
        if round == 1 {
            // The cached witness answered the broken PO pair.
            assert!(obs.recorder.get(Counter::CacheHits) > 0);
            assert!(obs.recorder.get(Counter::CacheReplays) > 0);
        }
    }
}
