//! Chaos suite: deterministic fault injection against the parallel
//! sweeper (build with `--features fault-inject`).
//!
//! A seeded [`FaultPlan`] panics, stalls, or spoofs `Unknown` on
//! chosen proof jobs, keyed on the job's global input-order index —
//! never on scheduling. The suite holds the sweeper to two promises
//! under any such plan:
//!
//! 1. **Soundness**: verdicts under faults are a subset of the
//!    fault-free run's. Faults only move pairs to quarantine or
//!    unresolved; they never flip a verdict or merge anything the
//!    clean run would not merge.
//! 2. **Determinism**: for a fixed fault seed, the stripped run
//!    report is byte-identical for every `--jobs` value.

#![cfg(feature = "fault-inject")]

use std::collections::HashMap;

use simgen_cec::{
    design_info, sweep_run_report, Deadline, FaultAction, FaultPlan, ParallelSweeper, RunMeta,
    SweepConfig, SweepReport,
};
use simgen_core::{SimGen, SimGenConfig};
use simgen_mapping::map_to_luts;
use simgen_netlist::{miter::combine, LutNetwork, NodeId};
use simgen_obs::Observer;
use simgen_workloads::{build_aig, rewrite::restructure};

/// Three seeds, each exercising a different mix of panics, stalls,
/// and spurious Unknowns over the workload's job indices.
const FAULT_SEEDS: [u64; 3] = [3, 5, 9];
const JOB_COUNTS: [usize; 3] = [1, 2, 4];

/// The golden workload's little sibling: `e64` miter'd against its
/// restructured self, so plenty of provable pairs survive simulation.
fn workload() -> LutNetwork {
    let aig = build_aig("e64").expect("known benchmark");
    let variant = restructure(&aig, 0.4, 11);
    let left = map_to_luts(&aig, 6);
    let right = map_to_luts(&variant, 6);
    combine(&left, &right).expect("matched interfaces").network
}

fn run(net: &LutNetwork, jobs: usize, plan: Option<FaultPlan>) -> (SweepReport, String) {
    let cfg = SweepConfig {
        guided_iterations: 2,
        seed: 11,
        jobs,
        certify: true,
        ..SweepConfig::default()
    };
    let mut gen = SimGen::new(SimGenConfig::default().with_seed(11));
    let mut obs = Observer::enabled();
    let mut sweeper = ParallelSweeper::new(cfg);
    if let Some(plan) = plan {
        sweeper = sweeper.with_fault_plan(plan);
    }
    let report = sweeper.run_observed(net, &mut gen, &Deadline::never(), &mut obs);
    let meta = RunMeta {
        command: "sweep".to_string(),
        argv: vec![
            "sweep".to_string(),
            "e64.blif".to_string(),
            jobs.to_string(),
        ],
        design: design_info(net, "e64", "e64.blif"),
    };
    let json = sweep_run_report(meta, &cfg, &report, &obs).deterministic_json();
    (report, json)
}

/// node → class index, for subset checks between runs.
fn class_map(classes: &[Vec<NodeId>]) -> HashMap<NodeId, usize> {
    let mut map = HashMap::new();
    for (i, class) in classes.iter().enumerate() {
        for &n in class {
            map.insert(n, i);
        }
    }
    map
}

#[test]
fn faults_only_degrade_never_flip() {
    let net = workload();
    let (clean, _) = run(&net, 2, None);
    assert!(
        clean.stats.proved_equivalent > 0,
        "workload sanity: provable pairs exist"
    );
    assert!(
        clean.unresolved.is_empty(),
        "workload sanity: the clean run resolves everything"
    );
    let clean_classes = class_map(&clean.proven_classes);

    for seed in FAULT_SEEDS {
        let plan = FaultPlan::from_seed(seed);
        let (faulty, _) = run(&net, 2, Some(plan));

        // Soundness: everything merged under faults was merged by the
        // clean run too (which resolved all pairs, so this subset
        // check is exact).
        for class in &faulty.proven_classes {
            let rep_class = clean_classes.get(&class[0]);
            assert!(
                rep_class.is_some(),
                "seed {seed}: merged node unknown to clean run"
            );
            for n in class {
                assert_eq!(
                    clean_classes.get(n),
                    rep_class,
                    "seed {seed}: fault run merged {n}, the clean run did not"
                );
            }
        }

        // Faults demote, they never fabricate: no certification
        // failure (evidence stays sound), and every quarantined pair
        // is reported unresolved, never merged.
        assert_eq!(faulty.stats.certification_failures, 0, "seed {seed}");
        for p in &faulty.quarantined {
            assert!(faulty.unresolved.contains(p), "seed {seed}");
            assert!(
                faulty
                    .proven_classes
                    .iter()
                    .all(|c| !(c.contains(&p.0) && c.contains(&p.1))),
                "seed {seed}: quarantined pair appears merged"
            );
        }

        // Cross-check the injected panics against the plan itself:
        // jobs are indexed 0..(proofs+panics) in dispatch order, so
        // the merge-side panic total must equal the number of Panic
        // actions the plan assigns to that index range.
        let d = faulty.stats.dispatch.as_ref().expect("parallel run");
        let total_jobs = d.proofs + d.panics;
        let planned_panics = (0..total_jobs)
            .filter(|&i| plan.action(i as usize) == FaultAction::Panic)
            .count() as u64;
        assert_eq!(d.panics, planned_panics, "seed {seed}");
        assert!(
            d.panics > 0,
            "seed {seed}: plan sanity — injects at least one panic"
        );
        let planned_spurious = (0..total_jobs)
            .filter(|&i| plan.action(i as usize) == FaultAction::SpuriousUnknown)
            .count() as u64;
        assert!(
            d.timeouts >= planned_spurious,
            "seed {seed}: every spurious Unknown must surface as a timeout"
        );
        assert_eq!(
            d.quarantined,
            faulty.quarantined.len() as u64,
            "seed {seed}"
        );
    }
}

#[test]
fn fault_runs_are_byte_identical_across_jobs() {
    let net = workload();
    for seed in FAULT_SEEDS {
        let plan = FaultPlan::from_seed(seed);
        let mut first: Option<(SweepReport, String)> = None;
        for jobs in JOB_COUNTS {
            let (report, json) = run(&net, jobs, Some(plan));
            match &first {
                None => first = Some((report, json)),
                Some((r1, j1)) => {
                    assert_eq!(
                        &json, j1,
                        "seed {seed} jobs {jobs}: stripped run report must be byte-identical"
                    );
                    assert_eq!(
                        report.proven_classes, r1.proven_classes,
                        "seed {seed} jobs {jobs}"
                    );
                    assert_eq!(report.unresolved, r1.unresolved, "seed {seed} jobs {jobs}");
                    assert_eq!(
                        report.quarantined, r1.quarantined,
                        "seed {seed} jobs {jobs}"
                    );
                    assert_eq!(
                        report.stats.solver, r1.stats.solver,
                        "seed {seed} jobs {jobs}"
                    );
                }
            }
        }
    }
}
