//! Golden `RunReport`: a checked-in deterministic report under
//! `results/` that every build re-validates against the
//! `simgen-run-report/3` schema and regenerates bit-for-bit.
//!
//! The golden file is the anchor for the append-only perf trajectory:
//! if a change alters the deterministic form (field added, renamed,
//! reordered), this test fails and the schema version must be bumped
//! deliberately. Regenerate with:
//!
//! ```text
//! SIMGEN_BLESS=1 cargo test -p simgen-cec --test golden_report
//! ```

use std::path::PathBuf;

use simgen_cec::{design_info, sweep_run_report, Deadline, ParallelSweeper, RunMeta, SweepConfig};
use simgen_core::{SimGen, SimGenConfig};
use simgen_mapping::map_to_luts;
use simgen_obs::{Json, Observer, RunReport};
use simgen_workloads::{build_aig, rewrite::restructure};

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results/golden_run_report.json")
}

/// The exact run the golden file was captured from: `e64` miter'd
/// against its own restructured variant, seed 11, two workers.
fn golden_run() -> String {
    let name = "e64";
    let seed = 11u64;
    let aig = build_aig(name).expect("known benchmark");
    let variant = restructure(&aig, 0.4, seed);
    let left = map_to_luts(&aig, 6);
    let right = map_to_luts(&variant, 6);
    let net = simgen_netlist::miter::combine(&left, &right)
        .expect("matched interfaces")
        .network;
    let cfg = SweepConfig {
        guided_iterations: 5,
        seed,
        jobs: 2,
        ..SweepConfig::default()
    };
    let mut gen = SimGen::new(SimGenConfig::default().with_seed(seed));
    let mut obs = Observer::enabled();
    let report =
        ParallelSweeper::new(cfg).run_observed(&net, &mut gen, &Deadline::never(), &mut obs);
    let meta = RunMeta {
        command: "sweep".to_string(),
        argv: vec!["sweep".to_string(), "e64.blif".to_string()],
        design: design_info(&net, name, "e64.blif"),
    };
    sweep_run_report(meta, &cfg, &report, &obs).deterministic_json()
}

#[test]
fn golden_report_matches_and_validates() {
    let path = golden_path();
    let fresh = golden_run();

    if std::env::var_os("SIMGEN_BLESS").is_some() {
        std::fs::write(&path, &fresh).expect("write golden report");
        eprintln!("blessed {}", path.display());
    }

    let on_disk = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {}: {e}; run with SIMGEN_BLESS=1 once", path.display()));

    // 1. The checked-in artifact still parses and satisfies the
    //    simgen-run-report/3 schema.
    let json = Json::parse(&on_disk).expect("golden report parses");
    RunReport::validate(&json).expect("golden report is schema-valid");

    // 2. The engine still reproduces it byte-for-byte: same seeds in,
    //    same deterministic form out, on any machine and worker count.
    assert_eq!(
        fresh, on_disk,
        "deterministic RunReport drifted from results/golden_run_report.json; \
         if the change is intentional, bless a new golden file"
    );
}
