//! The parallel proof-dispatch sweeper.
//!
//! Phases 1–2 (random + guided simulation) are identical to the
//! serial [`crate::Sweeper`]. Phase 3 replaces the one-incremental-
//! solver loop with synchronised *rounds*: every candidate pair
//! `(rep, candᵢ)` of every surviving class is listed in a
//! deterministic order, dispatched across a work-stealing worker pool
//! ([`simgen_dispatch::run_ordered`]), and the results are merged back
//! **in pair order**. Each pair gets a fresh [`PairProver`] seeded
//! with the equivalences proven in *earlier rounds* (restricted to the
//! pair's fanin cones), so a pair's outcome is a pure function of the
//! round history — never of which worker ran it or in what order.
//! That is what makes the sweep report byte-identical for any `jobs`
//! value.
//!
//! Counterexamples produced during a round are batched and flushed
//! through one word-parallel resimulation
//! (`flush_counterexamples`, shared with the serial path) at the end
//! of the round.
//!
//! Budget escalation: with [`SweepConfig::budget_schedule`] set, each
//! pair climbs the [`BudgetSchedule`] ladder (small conflict budget,
//! multiplied on every retry) and finally falls back to a node-limited
//! BDD check; pairs that exhaust everything are reported unresolved.

use std::collections::HashSet;
use std::time::Duration;

use simgen_core::PatternGenerator;
use simgen_dispatch::{run_ordered_traced, Attempt, BudgetSchedule, Deadline, JobStatus, Progress};
#[cfg(feature = "fault-inject")]
use simgen_dispatch::{FaultAction, FaultPlan};
use simgen_netlist::{LutNetwork, NodeId};
use simgen_obs::{Counter, Json, LocalRecorder, Observer, Phase};
use simgen_sat::{ScopeMetrics, SolverStats};
use simgen_sim::Replayer;

use crate::certify::{certify_equivalence, PROOF_BYTE_BUDGET};
use crate::journal::{
    apply_replayed_pair, class_signature, counter_snapshot, restore_counters, sweep_fingerprint,
    JournalVerdict, PairRecord, RoundRecord, StatsSnapshot, SweepJournal,
};
use crate::prove::{BddProver, EquivProver, PairProver, ProveOutcome};
use crate::region::{cone_union, RegionMap, DEFAULT_BDD_FIRST_LIMIT};
use crate::stats::{DispatchSummary, WorkerSummary};
use crate::sweep::{
    flush_counterexamples, record_exec_counters, record_merge, run_sim_phases, spawn_watchdog,
    ProofEngine, SimPhases, SweepConfig, SweepReport,
};

/// Scheduling-independent result of one pair proof (the wall-clock
/// metadata travels separately in the worker state).
#[derive(Clone, Debug, PartialEq, Eq)]
enum PairVerdict {
    /// Proven equal (and, under certify, DRAT-certified).
    Equivalent,
    /// Distinguishing input vector (replay-verified under certify).
    Counterexample(Vec<bool>),
    /// Ladder (and fallback, if enabled) exhausted.
    Undecided,
    /// The engine answered but certification rejected the answer:
    /// `replay: false` means the DRAT checker refused an `Equivalent`
    /// proof, `replay: true` means the scalar replay could not
    /// reproduce a counterexample. The merge loop quarantines the
    /// pair either way.
    CertificationFailed {
        /// Whether the rejected evidence was a counterexample.
        replay: bool,
    },
}

/// Everything a proof job hands back to the merge loop. The counter
/// deltas travel in the result — not in worker state — because a
/// panicking step respawns its worker with fresh state: under fault
/// injection, state-side accumulation would silently lose the counts
/// of every earlier job on that worker and make the totals depend on
/// scheduling. Merge-side accumulation over these results is exact
/// for any `--jobs` value (a panicked job contributes nothing,
/// deterministically).
struct PairOutcome {
    verdict: PairVerdict,
    /// Serialized DRAT blob of an `Equivalent` verdict, produced only
    /// when the round wants to populate the proof cache.
    proof: Option<Vec<u8>>,
    sat_calls: u64,
    sat_time: Duration,
    solver: SolverStats,
    /// Conflicts spent in aborted (budget-limited) attempts.
    conflicts: u64,
    /// Budget escalations beyond the first attempt.
    escalations: u64,
    /// Whether the whole ladder (and fallback) exhausted.
    timeout: bool,
    /// Scope-reuse delta attributable to this pair (zero when the
    /// pair never touched a SAT solver).
    metrics: ScopeMetrics,
}

impl PairOutcome {
    /// Outcome of a path that did no SAT work (BDD primary engine, or
    /// an injected spurious answer).
    fn engine_only(verdict: PairVerdict) -> Self {
        let timeout = verdict == PairVerdict::Undecided;
        PairOutcome {
            verdict,
            proof: None,
            sat_calls: 0,
            sat_time: Duration::ZERO,
            solver: SolverStats::default(),
            conflicts: 0,
            escalations: 0,
            timeout,
            metrics: ScopeMetrics::default(),
        }
    }
}

/// One dispatched proof job. In incremental mode a job is a whole
/// fanin region's worth of this round's pairs — they share one scoped
/// solver, serially, in global pair order — so the report's new
/// reuse counters stay `--jobs`-invariant. In cold mode every job is
/// a single pair, the classic shape.
struct RegionJob {
    /// Prior-round proven equalities inside this job's region,
    /// replayed into the shared prover at construction (incremental
    /// mode only; cold pairs filter the full seed list by cone).
    seeds: Vec<(NodeId, NodeId)>,
    /// `(global pair index, rep, cand)` in global pair order.
    pairs: Vec<(usize, NodeId, NodeId)>,
}

/// Per-pair result extracted from a region job; `None` in a merge
/// slot means the pair was never started (deadline skip).
enum PairStatus {
    Done(PairOutcome),
    Panicked,
}

/// Per-worker proving state: diagnostic counters plus the lazily-
/// built BDD fallback engine. The counters mirror
/// [`crate::stats::WorkerSummary`] and are diagnostics only — a panic
/// respawns the worker's state, losing them — the authoritative
/// totals are accumulated merge-side from each job's [`PairOutcome`].
struct WorkerState<'n> {
    net: &'n LutNetwork,
    /// Shared deadline bound to every prover this worker builds.
    deadline: Deadline,
    /// Lazily created on the first pair that exhausts its SAT ladder
    /// (or immediately when BDD is the primary engine).
    bdd: Option<BddProver<'n>>,
    /// Scalar reference evaluator for counterexample replay (reused
    /// across this worker's pairs; its buffers are scratch space).
    replayer: Replayer,
    proofs: u64,
    conflicts: u64,
    timeouts: u64,
    escalations: u64,
    /// Busy-span recorder merged into the orchestrator's at the round
    /// barrier (CPU attribution only).
    local: LocalRecorder,
}

impl<'n> WorkerState<'n> {
    fn new(net: &'n LutNetwork, deadline: Deadline, local: LocalRecorder) -> Self {
        WorkerState {
            net,
            deadline,
            bdd: None,
            replayer: Replayer::new(),
            proofs: 0,
            conflicts: 0,
            timeouts: 0,
            escalations: 0,
            local,
        }
    }

    /// BDD query through the worker's cached engine.
    fn bdd_prove(&mut self, a: NodeId, b: NodeId, node_limit: usize) -> PairVerdict {
        let net = self.net;
        let bdd = self
            .bdd
            .get_or_insert_with(|| BddProver::new(net, node_limit));
        match bdd.prove(a, b, None) {
            ProveOutcome::Equivalent => PairVerdict::Equivalent,
            ProveOutcome::Counterexample(v) => PairVerdict::Counterexample(v),
            ProveOutcome::Undecided { .. } => PairVerdict::Undecided,
        }
    }

    /// Proves one pair against `shared` (the region's long-lived
    /// scoped solver, built on first use in incremental mode) or a
    /// cold per-pair prover, escalated per `cfg`, with BDD fallback,
    /// and (under certify) the answer independently checked.
    /// Deterministic given `(region_seeds, seeds, a, b, cfg)` and the
    /// shared prover's query history — which is itself deterministic
    /// because region pairs are processed serially in global pair
    /// order.
    #[allow(clippy::too_many_arguments)]
    fn prove_pair(
        &mut self,
        shared: &mut Option<PairProver<'n>>,
        region_seeds: &[(NodeId, NodeId)],
        seeds: &[(NodeId, NodeId)],
        a: NodeId,
        b: NodeId,
        cfg: &SweepConfig,
        want_proof: bool,
    ) -> PairOutcome {
        let start = self.local.is_enabled().then(std::time::Instant::now);
        let outcome = self.prove_pair_inner(shared, region_seeds, seeds, a, b, cfg, want_proof);
        if let Some(start) = start {
            self.local.add_busy(Phase::SatResolution, start.elapsed());
        }
        outcome
    }

    /// A prover bound to this worker's deadline, with proof logging on
    /// when the run certifies (logging must precede the first clause).
    fn fresh_prover(&self, cfg: &SweepConfig) -> PairProver<'n> {
        let mut prover = PairProver::new(self.net);
        prover.bind_deadline(&self.deadline);
        if cfg.certify {
            prover.enable_certification(PROOF_BYTE_BUDGET);
        }
        prover
    }

    /// The actual proof; split out so [`WorkerState::prove_pair`] can
    /// book its busy time without borrowing `self` twice.
    #[allow(clippy::too_many_arguments)]
    fn prove_pair_inner(
        &mut self,
        shared: &mut Option<PairProver<'n>>,
        region_seeds: &[(NodeId, NodeId)],
        seeds: &[(NodeId, NodeId)],
        a: NodeId,
        b: NodeId,
        cfg: &SweepConfig,
        want_proof: bool,
    ) -> PairOutcome {
        self.proofs += 1;
        if let ProofEngine::Bdd { node_limit } = cfg.proof {
            // BDD answers carry no DRAT proof, so under certify the
            // SAT engine below proves the pair instead.
            if !cfg.certify {
                let verdict = self.bdd_prove(a, b, node_limit);
                if verdict == PairVerdict::Undecided {
                    self.timeouts += 1;
                }
                return PairOutcome::engine_only(verdict);
            }
        } else if cfg.engine.bdd_primary(cfg.certify) {
            let node_limit = cfg
                .budget_schedule
                .map(|s| s.bdd_node_limit)
                .filter(|&n| n > 0)
                .unwrap_or(DEFAULT_BDD_FIRST_LIMIT);
            let verdict = self.bdd_prove(a, b, node_limit);
            if verdict != PairVerdict::Undecided {
                return PairOutcome::engine_only(verdict);
            }
            // Node limit tripped: fall through to the SAT ladder.
        }

        // The SAT prover: the region's shared scoped solver, or a
        // cold per-pair one under `--no-incremental`.
        let mut cold_prover;
        let prover: &mut PairProver<'n> = if cfg.engine.incremental {
            if shared.is_none() {
                let mut p = self.fresh_prover(cfg);
                for &(x, y) in region_seeds {
                    p.assert_equal(x, y);
                }
                *shared = Some(p);
            }
            shared.as_mut().expect("just built")
        } else {
            let mut p = self.fresh_prover(cfg);
            let cone = cone_union(self.net, a, b);
            for &(x, y) in seeds {
                if cone.contains(&x) && cone.contains(&y) {
                    p.assert_equal(x, y);
                }
            }
            cold_prover = p;
            &mut cold_prover
        };
        // Everything this pair reports is a delta against the
        // prover's cumulative counters, so shared and cold provers
        // feed the merge identically.
        let calls_before = prover.calls();
        let time_before = prover.time();
        let solver_before = prover.solver_stats();
        let metrics_before = prover.metrics();
        let schedule = cfg.budget_schedule.unwrap_or(BudgetSchedule {
            // No ladder configured: one attempt at the flat budget,
            // no BDD fallback — the parallel analogue of the serial
            // sweeper's single `sat_budget` try.
            initial: cfg.sat_budget.unwrap_or(u64::MAX),
            multiplier: 1,
            attempts: 1,
            bdd_node_limit: 0,
        });
        let esc = schedule.run(|budget| match prover.prove(a, b, Some(budget)) {
            ProveOutcome::Equivalent => Attempt::Resolved(PairVerdict::Equivalent),
            ProveOutcome::Counterexample(v) => Attempt::Resolved(PairVerdict::Counterexample(v)),
            ProveOutcome::Undecided { conflicts } => Attempt::Undecided { conflicts },
        });
        self.escalations += u64::from(esc.escalations);
        self.conflicts += esc.conflicts;
        let mut verdict = match esc.outcome {
            Some(v) => v,
            // The BDD fallback is equally uncertifiable, so under
            // certify an exhausted ladder stays Undecided.
            None if cfg
                .engine
                .bdd_fallback(schedule.bdd_node_limit, cfg.certify) =>
            {
                self.bdd_prove(a, b, schedule.bdd_node_limit)
            }
            None => PairVerdict::Undecided,
        };
        if cfg.certify {
            verdict = match verdict {
                PairVerdict::Equivalent if !certify_equivalence(prover) => {
                    PairVerdict::CertificationFailed { replay: false }
                }
                PairVerdict::Counterexample(ref v)
                    if !self.replayer.distinguishes(self.net, v, a, b) =>
                {
                    PairVerdict::CertificationFailed { replay: true }
                }
                v => v,
            };
        }
        let timeout = verdict == PairVerdict::Undecided;
        if timeout {
            self.timeouts += 1;
        }
        // Serialize the certificate worker-side (where the solver
        // state lives); the orchestrator stores it at the merge. Must
        // happen before the prover's next query: the scoped solver
        // retires the current scope on the next `prove`, after which
        // the proof-log tail no longer certifies this pair.
        let proof = if want_proof && verdict == PairVerdict::Equivalent {
            prover.proof_blob()
        } else {
            None
        };
        PairOutcome {
            verdict,
            proof,
            sat_calls: prover.calls() - calls_before,
            sat_time: prover.time().saturating_sub(time_before),
            solver: prover.solver_stats() - solver_before,
            conflicts: esc.conflicts,
            escalations: u64::from(esc.escalations),
            timeout,
            metrics: prover.metrics() - metrics_before,
        }
    }
}

/// The parallel sweeping engine. Produces the same report structure
/// as [`crate::Sweeper`]; proof outcomes and class results are
/// independent of [`SweepConfig::jobs`].
#[derive(Clone, Debug)]
pub struct ParallelSweeper {
    config: SweepConfig,
    /// Test-only fault injection: pairs matching the predicate make
    /// their prover panic, exercising the quarantine path.
    panic_on: Option<fn(NodeId, NodeId) -> bool>,
    /// Seeded chaos plan applied to every dispatched proof job,
    /// keyed on the job's global input-order index. Kept out of
    /// [`SweepConfig`] so feature-gated builds report identical
    /// configuration.
    #[cfg(feature = "fault-inject")]
    fault_plan: Option<FaultPlan>,
}

impl ParallelSweeper {
    /// Creates a parallel sweeper with the given configuration.
    pub fn new(config: SweepConfig) -> Self {
        ParallelSweeper {
            config,
            panic_on: None,
            #[cfg(feature = "fault-inject")]
            fault_plan: None,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &SweepConfig {
        &self.config
    }

    /// Fault injection for robustness tests: any pair `(rep, cand)`
    /// for which `trigger` returns true panics inside its prover. The
    /// dispatch layer must quarantine it and finish the sweep.
    #[doc(hidden)]
    pub fn with_panic_injection(mut self, trigger: fn(NodeId, NodeId) -> bool) -> Self {
        self.panic_on = Some(trigger);
        self
    }

    /// Deterministic chaos: `plan` decides, per global job index,
    /// whether that proof job panics, stalls briefly, or returns a
    /// spurious `Unknown`. Because the key is the job's position in
    /// the deterministic pair order (never the worker or the wall
    /// clock), a fixed plan injects the identical fault set for every
    /// `--jobs` value — which is what lets the chaos suite demand
    /// byte-identical reports under faults.
    #[cfg(feature = "fault-inject")]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Runs the full sweep on `net` using `generator` for the guided
    /// phase and `config.jobs` workers for the proof phase, with no
    /// deadline.
    pub fn run(&self, net: &LutNetwork, generator: &mut dyn PatternGenerator) -> SweepReport {
        self.run_under(net, generator, &Deadline::never())
    }

    /// Runs the full sweep as an *anytime* computation. When
    /// `deadline` expires, in-flight proofs are interrupted through
    /// the shared flag, pairs not yet started are skipped, and
    /// everything unproven is reported unresolved. For runs that
    /// finish under deadline the report is byte-identical to an
    /// undeadlined run with the same config, for any `jobs` value.
    pub fn run_under(
        &self,
        net: &LutNetwork,
        generator: &mut dyn PatternGenerator,
        deadline: &Deadline,
    ) -> SweepReport {
        self.run_observed(net, generator, deadline, &mut Observer::disabled())
    }

    /// [`ParallelSweeper::run_under`] with instrumentation. Counters
    /// are bumped on the orchestrating thread from the merge-ordered
    /// results (never from worker-side observations), so the recorded
    /// totals are as scheduling-invariant as the report itself; worker
    /// CPU spans are merged at each round barrier.
    pub fn run_observed(
        &self,
        net: &LutNetwork,
        generator: &mut dyn PatternGenerator,
        deadline: &Deadline,
        obs: &mut Observer,
    ) -> SweepReport {
        self.run_cached(net, generator, deadline, obs, None)
    }

    /// [`ParallelSweeper::run_observed`] consulting a content-addressed
    /// proof cache. Lookups and inserts run on the orchestrating
    /// thread in deterministic pair order — workers never touch the
    /// cache — so the `cache_*` counters and the report stay
    /// `--jobs`-invariant for a fixed starting cache state. Pairs a
    /// trusted entry answers are never dispatched; their verdicts
    /// merge in the same pair order as live ones (see
    /// [`crate::cache`] for the trust policy).
    pub fn run_cached(
        &self,
        net: &LutNetwork,
        generator: &mut dyn PatternGenerator,
        deadline: &Deadline,
        obs: &mut Observer,
        cache: Option<&simgen_cache::ProofCache>,
    ) -> SweepReport {
        self.run_checkpointed(net, generator, deadline, obs, cache, None)
    }

    /// [`ParallelSweeper::run_cached`] with an optional write-ahead
    /// [`SweepJournal`]. With a journal, every round barrier commits
    /// the round's verdicts before the sweep proceeds; a journal
    /// opened in resume mode replays its validated rounds instead of
    /// re-proving them (see [`crate::journal`] for why the resulting
    /// stripped report is byte-identical to an uninterrupted run).
    pub fn run_checkpointed(
        &self,
        net: &LutNetwork,
        generator: &mut dyn PatternGenerator,
        deadline: &Deadline,
        obs: &mut Observer,
        cache: Option<&simgen_cache::ProofCache>,
        mut journal: Option<&mut SweepJournal>,
    ) -> SweepReport {
        let cfg = &self.config;
        let jobs = cfg.jobs.max(1);
        let panic_on = self.panic_on;
        #[cfg(feature = "fault-inject")]
        let fault_plan = self.fault_plan;
        let SimPhases {
            mut stats,
            mut patterns,
            mut sim,
            classes,
        } = run_sim_phases(cfg, net, generator, deadline, obs);
        let cost_after_sim = classes.cost();

        let mut proven: Vec<Vec<NodeId>> = Vec::new();
        let mut unresolved: Vec<(NodeId, NodeId)> = Vec::new();
        let mut quarantined: Vec<(NodeId, NodeId)> = Vec::new();
        let mut interrupted = false;
        let mut mem_exhausted = false;
        if cfg.run_sat {
            let progress = Progress::default();
            let _watchdog = spawn_watchdog(cfg, deadline, &progress, &obs.trace);
            let sat_start = obs.recorder.is_enabled().then(std::time::Instant::now);
            let resim_before = stats.resim_time;
            let mut sweep_cache = cache.map(|c| crate::cache::SweepCache::new(c, cfg.certify));
            let want_proof = cache.is_some() && cfg.certify;
            // Fanin-region partition, computed once per sweep:
            // incremental mode dispatches each round's pairs grouped
            // by region so the group shares one scoped solver.
            let mut regions = RegionMap::new(net);
            let mut work: Vec<Vec<NodeId>> = classes.classes().to_vec();
            let mut merged: Vec<Vec<NodeId>> = Vec::new();
            // Equivalences proven in earlier rounds, in merge order:
            // the deterministic seed set for every later pair prover.
            let mut seeds: Vec<(NodeId, NodeId)> = Vec::new();
            let mut summary = DispatchSummary {
                jobs,
                workers: (0..jobs)
                    .map(|worker| WorkerSummary {
                        worker,
                        ..WorkerSummary::default()
                    })
                    .collect(),
                ..DispatchSummary::default()
            };
            // Global input-order job index, running across rounds —
            // the key fault plans select on.
            let mut next_job_index = 0usize;
            // Validated journal rounds still awaiting replay (resume
            // mode only; empty for fresh or absent journals).
            let mut replay: std::collections::VecDeque<RoundRecord> = match journal.as_deref_mut() {
                Some(j) => {
                    j.begin(&sweep_fingerprint(net, cfg));
                    j.rounds().to_vec().into()
                }
                None => std::collections::VecDeque::new(),
            };
            let mut replayed_rounds = 0usize;
            let mut governor = crate::govern::MemoryGovernor::new(cfg.mem_budget);
            loop {
                // One round: every (rep, candidate) pair of every
                // surviving class, shallowest candidates first (the
                // same priority the serial sweeper uses).
                let mut pairs: Vec<(NodeId, NodeId)> = work
                    .iter()
                    .flat_map(|c| {
                        let rep = c[0];
                        c[1..].iter().map(move |&cand| (rep, cand))
                    })
                    .collect();
                if pairs.is_empty() {
                    break;
                }
                pairs.sort_by_key(|&(_, cand)| (net.level(cand), cand));
                // Replay path: the next journaled round, if it matches
                // the pairs this run derived, is applied without
                // dispatching a single proof. The pair-list check runs
                // before any state is touched, so a stale journal
                // degrades into a plain live round.
                if let Some(record) = replay.front() {
                    let matches = record.pairs.len() == pairs.len()
                        && record.pairs.iter().zip(&pairs).all(|(p, &(rep, cand))| {
                            p.rep == rep.index() && p.cand == cand.index()
                        });
                    if matches {
                        let record = replay.pop_front().expect("front checked above");
                        let mut pending: Vec<Vec<bool>> = Vec::new();
                        let mut benched: Vec<(NodeId, NodeId)> = Vec::new();
                        let mut dropped: HashSet<NodeId> = HashSet::new();
                        for pair in record.pairs {
                            apply_replayed_pair(
                                pair,
                                generator,
                                &mut merged,
                                &mut seeds,
                                &mut unresolved,
                                &mut quarantined,
                                &mut pending,
                                &mut benched,
                                &mut dropped,
                                &mut interrupted,
                            );
                        }
                        next_job_index += record.dispatched as usize;
                        for class in &mut work {
                            class.retain(|n| !dropped.contains(n));
                        }
                        work.retain(|c| c.len() >= 2);
                        if !pending.is_empty() {
                            let t = std::time::Instant::now();
                            work = flush_counterexamples(
                                net,
                                &mut patterns,
                                &mut sim,
                                work,
                                &mut pending,
                                &mut benched,
                                cfg.jobs.max(1),
                                obs,
                            );
                            let elapsed = t.elapsed();
                            stats.sim_time += elapsed;
                            stats.resim_time += elapsed;
                        }
                        replayed_rounds += 1;
                        // Restore the barrier's cumulative snapshots:
                        // from here the observable state is identical
                        // to the original run's at this point.
                        record.stats.restore(&mut stats, &mut summary);
                        restore_counters(obs, &record.counters);
                        obs.trace
                            .emit("round_replayed", vec![("round", Json::U64(record.round))]);
                        if record.class_sig != class_signature(&work) {
                            // The journal's later rounds describe a
                            // different history; drop them (and scrub
                            // the file) rather than replay divergence.
                            replay.clear();
                            if let Some(j) = journal.as_deref_mut() {
                                j.truncate(replayed_rounds);
                            }
                        }
                        continue;
                    }
                    // Pair list diverged before anything was applied:
                    // abandon the remaining journal and prove live.
                    replay.clear();
                    if let Some(j) = journal.as_deref_mut() {
                        j.truncate(replayed_rounds);
                    }
                }
                // Memory governance at the round barrier: the solver
                // gauge comes from the merged, journal-restored stats,
                // so a resumed run sees the same estimates as the
                // original at every fresh round.
                if governor.note(crate::govern::estimate_resident(
                    &stats.solver,
                    &sim.pool_stats(),
                )) {
                    mem_exhausted = true;
                    deadline.trip();
                    obs.trace.emit(
                        "mem_budget_exhausted",
                        vec![("estimate_bytes", Json::U64(governor.peak()))],
                    );
                }
                if deadline.expired() {
                    // Out of time before the round started: every
                    // remaining pair is unresolved, in the same
                    // deterministic order it would have been proven.
                    interrupted = true;
                    obs.recorder.add(Counter::DeadlineTrips, 1);
                    obs.trace.emit(
                        "sweep_deadline_expired",
                        vec![("unresolved", Json::U64(pairs.len() as u64))],
                    );
                    for (rep, cand) in pairs {
                        stats.aborted += 1;
                        unresolved.push((rep, cand));
                    }
                    break;
                }
                summary.rounds += 1;
                obs.recorder.add(Counter::Rounds, 1);
                obs.trace.emit(
                    "round_start",
                    vec![
                        ("round", Json::U64(summary.rounds)),
                        ("pairs", Json::U64(pairs.len() as u64)),
                    ],
                );

                // Orchestrator-side cache pass, in pair order: pairs a
                // trusted entry answers skip dispatch entirely; the
                // rest go to the worker pool. Lookup order (and hence
                // the cache counters) never depends on scheduling.
                let resolutions: Vec<Option<PairVerdict>> = match sweep_cache.as_mut() {
                    Some(sc) => pairs
                        .iter()
                        .map(|&(a, b)| match sc.resolve(net, a, b, obs) {
                            crate::cache::CacheLookup::Hit(ProveOutcome::Equivalent) => {
                                Some(PairVerdict::Equivalent)
                            }
                            crate::cache::CacheLookup::Hit(ProveOutcome::Counterexample(v)) => {
                                Some(PairVerdict::Counterexample(v))
                            }
                            _ => None,
                        })
                        .collect(),
                    None => vec![None; pairs.len()],
                };

                let seeds_ref: &[(NodeId, NodeId)] = &seeds;
                let recorder = &obs.recorder;
                // Jobs carry their global input-order index so fault
                // plans key on *which pair* is proven, never on
                // scheduling.
                let round_base = next_job_index;
                let indexed: Vec<(usize, NodeId, NodeId)> = pairs
                    .iter()
                    .zip(&resolutions)
                    .filter(|(_, cached)| cached.is_none())
                    .enumerate()
                    .map(|(i, (&(a, b), _))| (next_job_index + i, a, b))
                    .collect();
                next_job_index += indexed.len();
                let dispatched_this_round = indexed.len() as u64;
                // Incremental mode dispatches one job per fanin
                // region (its pairs share a scoped solver, serially,
                // in global pair order); cold mode keeps the classic
                // job-per-pair shape. Either way the grouping is a
                // pure function of the pair list, never of
                // scheduling.
                let mut region_jobs: Vec<RegionJob> = Vec::new();
                if cfg.engine.incremental {
                    let mut by_region: std::collections::HashMap<usize, usize> =
                        std::collections::HashMap::new();
                    let mut keys: Vec<usize> = Vec::new();
                    for &(ji, a, b) in &indexed {
                        let key = regions.key(a, b);
                        let slot = *by_region.entry(key).or_insert_with(|| {
                            region_jobs.push(RegionJob {
                                seeds: Vec::new(),
                                pairs: Vec::new(),
                            });
                            keys.push(key);
                            region_jobs.len() - 1
                        });
                        region_jobs[slot].pairs.push((ji, a, b));
                    }
                    for (job, &key) in region_jobs.iter_mut().zip(&keys) {
                        job.seeds = seeds
                            .iter()
                            .copied()
                            .filter(|&(x, y)| regions.key(x, y) == key)
                            .collect();
                    }
                } else {
                    region_jobs = indexed
                        .iter()
                        .map(|&(ji, a, b)| RegionJob {
                            seeds: Vec::new(),
                            pairs: vec![(ji, a, b)],
                        })
                        .collect();
                }
                // Pair indices per job, for expanding job-level
                // panic/skip into per-pair slots after the dispatch
                // consumes the job list.
                let job_pair_indices: Vec<Vec<usize>> = region_jobs
                    .iter()
                    .map(|j| j.pairs.iter().map(|&(ji, _, _)| ji).collect())
                    .collect();
                let outcome = run_ordered_traced(
                    jobs,
                    region_jobs,
                    Some(deadline),
                    &obs.trace,
                    |_| WorkerState::new(net, deadline.clone(), recorder.local()),
                    |state, job: &RegionJob| {
                        // The region's shared prover (incremental
                        // mode); rebuilt cold after a caught panic —
                        // a poisoned solver is never trusted, and the
                        // rebuild is deterministic (same seeds, same
                        // remaining pairs, any jobs value).
                        let mut shared: Option<PairProver<'_>> = None;
                        let mut results: Vec<(usize, PairStatus)> =
                            Vec::with_capacity(job.pairs.len());
                        for &(job_index, a, b) in &job.pairs {
                            let attempt =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    #[cfg(feature = "fault-inject")]
                                    if let Some(plan) = fault_plan {
                                        match plan.action(job_index) {
                                            FaultAction::Panic => {
                                                panic!("injected fault: panic on job {job_index}")
                                            }
                                            // A stall must not change
                                            // the result, only its
                                            // timing.
                                            FaultAction::Stall(d) => std::thread::sleep(d),
                                            FaultAction::SpuriousUnknown => {
                                                state.proofs += 1;
                                                state.timeouts += 1;
                                                return PairOutcome::engine_only(
                                                    PairVerdict::Undecided,
                                                );
                                            }
                                            FaultAction::None => {}
                                        }
                                    }
                                    #[cfg(not(feature = "fault-inject"))]
                                    let _ = job_index;
                                    if panic_on.is_some_and(|trigger| trigger(a, b)) {
                                        panic!("injected prover panic on pair ({a}, {b})");
                                    }
                                    state.prove_pair(
                                        &mut shared,
                                        &job.seeds,
                                        seeds_ref,
                                        a,
                                        b,
                                        cfg,
                                        want_proof,
                                    )
                                }));
                            match attempt {
                                Ok(out) => results.push((job_index, PairStatus::Done(out))),
                                Err(_) => {
                                    shared = None;
                                    results.push((job_index, PairStatus::Panicked));
                                }
                            }
                            progress.tick();
                        }
                        results
                    },
                );
                // Round barrier: merge the workers' CPU spans (sum is
                // order-independent) and their diagnostic rows. The
                // authoritative, scheduling-invariant totals come from
                // the per-job results in the merge loop below —
                // a panicked step respawns its worker's state, so the
                // rows may under-report.
                obs.recorder
                    .merge(outcome.workers.iter().map(|r| &r.state.local));
                for report in &outcome.workers {
                    let agg = &mut summary.workers[report.worker];
                    agg.proofs += report.state.proofs;
                    agg.conflicts += report.state.conflicts;
                    agg.timeouts += report.state.timeouts;
                    agg.escalations += report.state.escalations;
                    agg.steals += report.stolen;
                    agg.panics += report.panics;
                }

                // Merge in pair order — the only order-sensitive step,
                // and it only depends on the (deterministic) results.
                // Panicked and skipped pairs are quarantined: counted,
                // reported unresolved, and never merged — the sound
                // direction to fail in.
                let mut pending: Vec<Vec<bool>> = Vec::new();
                let mut benched: Vec<(NodeId, NodeId)> = Vec::new();
                let mut dropped: HashSet<NodeId> = HashSet::new();
                let mut escalations_this_round = 0;
                // Journal-bound verdict log for this round (collected
                // only when a journal is attached).
                let mut round_log: Option<Vec<PairRecord>> = journal.is_some().then(Vec::new);
                // Flatten region-job results back into per-pair slots
                // keyed by global pair index: a region job returns
                // its pairs grouped, not in global pair order, and a
                // job-level panic or deadline skip marks every pair
                // it carried. `None` = never started.
                let mut slots: Vec<Option<PairStatus>> = Vec::new();
                slots.resize_with(indexed.len(), || None);
                for (pair_indices, status) in job_pair_indices.iter().zip(outcome.results) {
                    match status {
                        JobStatus::Done(pair_results) => {
                            for (ji, st) in pair_results {
                                slots[ji - round_base] = Some(st);
                            }
                        }
                        JobStatus::Panicked { .. } => {
                            for &ji in pair_indices {
                                slots[ji - round_base] = Some(PairStatus::Panicked);
                            }
                        }
                        JobStatus::Skipped => {}
                    }
                }
                let mut slot_iter = slots.into_iter();
                for ((rep, cand), cached) in pairs.into_iter().zip(resolutions) {
                    let from_cache = cached.is_some();
                    let mut proof_blob: Option<Vec<u8>> = None;
                    // The journal distinguishes panicked/skipped pairs
                    // from ordinary undecided ones (their replay
                    // effects differ); record the flaw here because
                    // the verdict below collapses both to `Undecided`.
                    let mut flaw: Option<JournalVerdict> = None;
                    let status = match cached {
                        // Trusted cache hits were never dispatched;
                        // wrap them so one match handles both sources.
                        Some(verdict) => Some(PairStatus::Done(PairOutcome::engine_only(verdict))),
                        None => slot_iter.next().expect("one slot per dispatched pair"),
                    };
                    let verdict = match status {
                        Some(PairStatus::Done(out)) if from_cache => out.verdict,
                        Some(PairStatus::Done(out)) => {
                            obs.recorder.add(Counter::ProofsDispatched, 1);
                            summary.proofs += 1;
                            summary.conflicts += out.conflicts;
                            summary.escalations += out.escalations;
                            escalations_this_round += out.escalations;
                            if out.timeout {
                                summary.timeouts += 1;
                            }
                            stats.sat_calls += out.sat_calls;
                            stats.sat_time += out.sat_time;
                            stats.solver += out.solver;
                            obs.recorder
                                .add(Counter::ScopesOpened, out.metrics.scopes_opened);
                            obs.recorder
                                .add(Counter::ClausesReused, out.metrics.clauses_reused);
                            obs.recorder
                                .add(Counter::WarmSolves, out.metrics.warm_solves);
                            proof_blob = out.proof;
                            out.verdict
                        }
                        Some(PairStatus::Panicked) => {
                            flaw = Some(JournalVerdict::Panicked);
                            summary.panics += 1;
                            summary.quarantined += 1;
                            quarantined.push((rep, cand));
                            obs.recorder.add(Counter::ProofsDispatched, 1);
                            obs.recorder.add(Counter::ProofsQuarantined, 1);
                            obs.trace.emit(
                                "proof_quarantined",
                                vec![
                                    ("rep", Json::U64(rep.index() as u64)),
                                    ("cand", Json::U64(cand.index() as u64)),
                                ],
                            );
                            PairVerdict::Undecided
                        }
                        None => {
                            flaw = Some(JournalVerdict::Skipped);
                            summary.quarantined += 1;
                            interrupted = true;
                            obs.recorder.add(Counter::ProofsSkipped, 1);
                            PairVerdict::Undecided
                        }
                    };
                    if let Some(log) = round_log.as_mut() {
                        let journaled = flaw.unwrap_or_else(|| match &verdict {
                            PairVerdict::Equivalent => JournalVerdict::Equivalent,
                            PairVerdict::Counterexample(v) => {
                                JournalVerdict::Counterexample(v.clone())
                            }
                            PairVerdict::Undecided => JournalVerdict::Undecided,
                            PairVerdict::CertificationFailed { replay } => {
                                JournalVerdict::CertificationFailed { replay: *replay }
                            }
                        });
                        log.push(PairRecord {
                            rep: rep.index(),
                            cand: cand.index(),
                            verdict: journaled,
                        });
                    }
                    if obs.trace.is_enabled() {
                        let name = match &verdict {
                            PairVerdict::Equivalent => "equivalent",
                            PairVerdict::Counterexample(_) => "disproved",
                            PairVerdict::Undecided => "undecided",
                            PairVerdict::CertificationFailed { .. } => "certification_failed",
                        };
                        obs.trace.emit(
                            "proof",
                            vec![
                                ("rep", Json::U64(rep.index() as u64)),
                                ("cand", Json::U64(cand.index() as u64)),
                                ("verdict", Json::Str(name.to_string())),
                            ],
                        );
                    }
                    // Publish fresh verdicts (cache hits are already
                    // stored; quarantined and undecided pairs carry no
                    // fact worth keeping).
                    if !from_cache {
                        if let Some(sc) = sweep_cache.as_mut() {
                            match &verdict {
                                PairVerdict::Equivalent => sc.store(
                                    net,
                                    rep,
                                    cand,
                                    &ProveOutcome::Equivalent,
                                    proof_blob.take(),
                                    obs,
                                ),
                                PairVerdict::Counterexample(v) => sc.store(
                                    net,
                                    rep,
                                    cand,
                                    &ProveOutcome::Counterexample(v.clone()),
                                    None,
                                    obs,
                                ),
                                _ => {}
                            }
                        }
                    }
                    match verdict {
                        PairVerdict::Equivalent => {
                            if cfg.certify && !from_cache {
                                obs.recorder.add(Counter::CertificatesChecked, 1);
                            }
                            stats.proved_equivalent += 1;
                            obs.recorder.add(Counter::ProofsEquivalent, 1);
                            record_merge(&mut merged, rep, cand);
                            seeds.push((rep, cand));
                            dropped.insert(cand);
                        }
                        PairVerdict::Counterexample(v) => {
                            if cfg.certify && !from_cache {
                                obs.recorder.add(Counter::CexReplays, 1);
                            }
                            stats.disproved += 1;
                            obs.recorder.add(Counter::ProofsDisproved, 1);
                            generator.observe_counterexample(&v);
                            pending.push(v);
                            benched.push((cand, rep));
                            dropped.insert(cand);
                        }
                        PairVerdict::Undecided => {
                            stats.aborted += 1;
                            obs.recorder.add(Counter::ProofsUndecided, 1);
                            unresolved.push((rep, cand));
                            dropped.insert(cand);
                        }
                        PairVerdict::CertificationFailed { replay } => {
                            // An answer its own evidence does not
                            // support: quarantine the pair, never
                            // merge or split on it.
                            if replay {
                                obs.recorder.add(Counter::CexReplays, 1);
                                obs.recorder.add(Counter::CexReplayFailures, 1);
                            } else {
                                obs.recorder.add(Counter::CertificatesChecked, 1);
                                obs.recorder.add(Counter::CertificatesFailed, 1);
                            }
                            stats.certification_failures += 1;
                            stats.aborted += 1;
                            summary.quarantined += 1;
                            obs.recorder.add(Counter::ProofsQuarantined, 1);
                            obs.trace.emit(
                                "certification_failed",
                                vec![
                                    ("rep", Json::U64(rep.index() as u64)),
                                    ("cand", Json::U64(cand.index() as u64)),
                                ],
                            );
                            unresolved.push((rep, cand));
                            quarantined.push((rep, cand));
                            dropped.insert(cand);
                        }
                    }
                }
                obs.recorder
                    .add(Counter::ProofsEscalated, escalations_this_round);
                for class in &mut work {
                    class.retain(|n| !dropped.contains(n));
                }
                work.retain(|c| c.len() >= 2);
                if !pending.is_empty() {
                    let t = std::time::Instant::now();
                    work = flush_counterexamples(
                        net,
                        &mut patterns,
                        &mut sim,
                        work,
                        &mut pending,
                        &mut benched,
                        cfg.jobs.max(1),
                        obs,
                    );
                    let elapsed = t.elapsed();
                    stats.sim_time += elapsed;
                    stats.resim_time += elapsed;
                } else if !benched.is_empty() {
                    unreachable!("benched candidates always carry a counterexample");
                }
                // Round barrier durability point: everything merged
                // above survives a crash from here on.
                if let Some(j) = journal.as_deref_mut() {
                    j.commit_round(&RoundRecord {
                        round: summary.rounds,
                        pairs: round_log.take().unwrap_or_default(),
                        dispatched: dispatched_this_round,
                        class_sig: class_signature(&work),
                        counters: counter_snapshot(obs),
                        stats: StatsSnapshot::capture(&stats, &summary),
                    });
                }
            }
            if let Some(start) = sat_start {
                // Wall time only: resimulation wall is booked to CexResim
                // by the flush itself, and SAT CPU time arrives through the
                // merged per-worker busy spans.
                obs.recorder.add_wall(
                    Phase::SatResolution,
                    start
                        .elapsed()
                        .saturating_sub(stats.resim_time - resim_before),
                );
            }
            stats.dispatch = Some(summary);
            proven = merged;
        }
        stats.exec = sim.exec_stats();
        stats.pool = sim.pool_stats();
        record_exec_counters(obs, &stats.exec);

        SweepReport {
            stats,
            cost_after_sim,
            proven_classes: proven,
            unresolved,
            quarantined,
            interrupted: interrupted || deadline.expired(),
            mem_exhausted,
            patterns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::Sweeper;
    use simgen_core::{SimGen, SimGenConfig};
    use simgen_netlist::TruthTable;

    /// A network with several provably-equivalent node groups and a
    /// couple of near-miss lookalikes.
    pub(super) fn workload_net(seed: u64) -> LutNetwork {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = LutNetwork::new();
        let pis: Vec<NodeId> = (0..6).map(|i| net.add_pi(format!("p{i}"))).collect();
        let mut pool = pis.clone();
        for _ in 0..30 {
            let a = pool[rng.gen_range(0..pool.len())];
            let b = pool[rng.gen_range(0..pool.len())];
            let tt = match rng.gen_range(0..4usize) {
                0 => TruthTable::and2(),
                1 => TruthTable::or2(),
                2 => TruthTable::xor2(),
                _ => TruthTable::nor2(),
            };
            if let Ok(n) = net.add_lut(vec![a, b], tt) {
                pool.push(n);
            }
        }
        // Duplicate a few gates with commuted fanins (and the truth
        // table permuted to match) to guarantee provable equivalences.
        let dup_targets: Vec<NodeId> = pool[pis.len()..].iter().copied().take(6).collect();
        for n in dup_targets {
            let f = net.fanins(n).to_vec();
            let tt = net.truth_table(n).unwrap().permute_inputs(&[1, 0]);
            if let Ok(d) = net.add_lut(vec![f[1], f[0]], tt) {
                pool.push(d);
            }
        }
        let out = *pool.last().unwrap();
        net.add_po(out, "f");
        for (i, &n) in pool.iter().rev().take(4).enumerate() {
            net.add_po(n, format!("o{i}"));
        }
        net
    }

    /// Sorted copy of the proven classes for order-insensitive
    /// comparison between engines.
    fn normalized(mut classes: Vec<Vec<NodeId>>) -> Vec<Vec<NodeId>> {
        for c in &mut classes {
            c.sort();
        }
        classes.sort();
        classes
    }

    #[test]
    fn parallel_matches_serial_outcomes() {
        for seed in [1u64, 2, 3] {
            let net = workload_net(seed);
            let base_cfg = SweepConfig {
                seed,
                ..SweepConfig::default()
            };
            let mut g = SimGen::new(SimGenConfig::default().with_seed(seed));
            let serial = Sweeper::new(base_cfg).run(&net, &mut g);
            for jobs in [1usize, 4] {
                let cfg = SweepConfig { jobs, ..base_cfg };
                let mut g = SimGen::new(SimGenConfig::default().with_seed(seed));
                let par = ParallelSweeper::new(cfg).run(&net, &mut g);
                assert_eq!(
                    normalized(par.proven_classes.clone()),
                    normalized(serial.proven_classes.clone()),
                    "seed {seed} jobs {jobs}"
                );
                assert_eq!(par.stats.proved_equivalent, serial.stats.proved_equivalent);
                assert!(par.unresolved.is_empty());
                assert!(serial.unresolved.is_empty());
            }
        }
    }

    #[test]
    fn job_count_does_not_change_the_report() {
        let net = workload_net(7);
        let run = |jobs: usize| {
            let cfg = SweepConfig {
                jobs,
                budget_schedule: Some(BudgetSchedule::default()),
                seed: 7,
                ..SweepConfig::default()
            };
            let mut g = SimGen::new(SimGenConfig::default().with_seed(7));
            ParallelSweeper::new(cfg).run(&net, &mut g)
        };
        let r1 = run(1);
        for jobs in [2usize, 4] {
            let rj = run(jobs);
            // Byte-identical proof results and deterministic stats.
            assert_eq!(rj.proven_classes, r1.proven_classes, "jobs {jobs}");
            assert_eq!(rj.unresolved, r1.unresolved);
            assert_eq!(rj.patterns.num_patterns(), r1.patterns.num_patterns());
            assert_eq!(rj.stats.proved_equivalent, r1.stats.proved_equivalent);
            assert_eq!(rj.stats.disproved, r1.stats.disproved);
            assert_eq!(rj.stats.aborted, r1.stats.aborted);
            assert_eq!(rj.stats.sat_calls, r1.stats.sat_calls);
            let d1 = r1.stats.dispatch.as_ref().unwrap();
            let dj = rj.stats.dispatch.as_ref().unwrap();
            assert_eq!(dj.rounds, d1.rounds);
            assert_eq!(dj.total_proofs(), d1.total_proofs());
            assert_eq!(dj.total_timeouts(), d1.total_timeouts());
        }
    }

    #[test]
    fn escalation_ladder_resolves_with_tiny_initial_budget() {
        // initial=1 forces escalations on any pair needing search; the
        // multiplied retries must still resolve everything.
        let net = workload_net(11);
        let cfg = SweepConfig {
            jobs: 2,
            budget_schedule: Some(BudgetSchedule {
                initial: 1,
                multiplier: 1_000,
                attempts: 3,
                bdd_node_limit: 0,
            }),
            seed: 11,
            ..SweepConfig::default()
        };
        let mut g = SimGen::new(SimGenConfig::default().with_seed(11));
        let r = ParallelSweeper::new(cfg).run(&net, &mut g);
        let d = r.stats.dispatch.as_ref().unwrap();
        assert!(r.stats.proved_equivalent > 0, "duplicated gates must merge");
        assert_eq!(
            d.total_proofs(),
            r.stats.proved_equivalent + r.stats.disproved + r.stats.aborted
        );
    }

    #[test]
    fn bdd_fallback_rescues_exhausted_ladder() {
        // Zero-attempt... smallest ladder (1 attempt, budget 1) on a
        // pair of reassociated xor trees: SAT at budget 1 cannot prove
        // it, the BDD fallback can.
        let mut net = LutNetwork::new();
        let pis: Vec<NodeId> = (0..8).map(|i| net.add_pi(format!("p{i}"))).collect();
        let mut l = pis[0];
        for &p in &pis[1..] {
            l = net.add_lut(vec![l, p], TruthTable::xor2()).unwrap();
        }
        let mut r = pis[7];
        for &p in pis[..7].iter().rev() {
            r = net.add_lut(vec![r, p], TruthTable::xor2()).unwrap();
        }
        net.add_po(l, "l");
        net.add_po(r, "r");
        let run = |bdd_node_limit: usize| {
            let cfg = SweepConfig {
                jobs: 2,
                random_batch: 64,
                guided_iterations: 2,
                budget_schedule: Some(BudgetSchedule {
                    initial: 1,
                    multiplier: 1,
                    attempts: 1,
                    bdd_node_limit,
                }),
                ..SweepConfig::default()
            };
            let mut g = SimGen::new(SimGenConfig::default());
            ParallelSweeper::new(cfg).run(&net, &mut g)
        };
        let without = run(0);
        // The xor pair survives simulation (equivalent functions) and
        // must end up unresolved without a fallback...
        assert!(without
            .unresolved
            .iter()
            .any(|&(a, b)| (a, b) == (l, r) || (a, b) == (r, l)));
        // ...and proven with one.
        let with = run(1_000_000);
        assert!(with
            .proven_classes
            .iter()
            .any(|c| c.contains(&l) && c.contains(&r)));
        assert!(with.stats.dispatch.as_ref().unwrap().total_escalations() == 0);
    }

    #[test]
    fn panicking_prover_is_quarantined_not_fatal() {
        // Every single pair proof panics; the sweep must still run to
        // completion with everything quarantined and nothing merged.
        let net = workload_net(13);
        for jobs in [1usize, 4] {
            let cfg = SweepConfig {
                jobs,
                seed: 13,
                ..SweepConfig::default()
            };
            let mut g = SimGen::new(SimGenConfig::default().with_seed(13));
            let r = ParallelSweeper::new(cfg)
                .with_panic_injection(|_, _| true)
                .run(&net, &mut g);
            assert!(r.proven_classes.is_empty(), "jobs={jobs}");
            assert!(!r.quarantined.is_empty(), "jobs={jobs}");
            assert!(!r.interrupted, "no deadline involved, jobs={jobs}");
            let d = r.stats.dispatch.as_ref().unwrap();
            assert_eq!(d.quarantined, r.quarantined.len() as u64);
            assert_eq!(d.total_panics(), d.quarantined);
            // Soundness: every quarantined pair is reported unresolved.
            for p in &r.quarantined {
                assert!(r.unresolved.contains(p), "jobs={jobs}");
            }
            assert_eq!(r.stats.aborted as usize, r.unresolved.len());
        }
    }

    #[test]
    fn partial_panic_injection_spares_other_pairs() {
        // Panic on pairs with an even candidate id: those quarantine,
        // the rest must still resolve normally.
        let net = workload_net(3);
        let cfg = SweepConfig {
            jobs: 2,
            seed: 3,
            ..SweepConfig::default()
        };
        let mut g = SimGen::new(SimGenConfig::default().with_seed(3));
        let baseline = ParallelSweeper::new(cfg).run(&net, &mut g);
        assert!(baseline.stats.proved_equivalent > 0, "workload sanity");

        let mut g = SimGen::new(SimGenConfig::default().with_seed(3));
        let r = ParallelSweeper::new(cfg)
            .with_panic_injection(|_, cand| cand.index() % 2 == 0)
            .run(&net, &mut g);
        let d = r.stats.dispatch.as_ref().unwrap();
        assert!(d.quarantined > 0, "some pair must have been injected");
        assert_eq!(d.total_panics(), d.quarantined);
        for p in &r.quarantined {
            assert!(r.unresolved.contains(p));
            // The injection never reached a prover, so no quarantined
            // pair may appear merged.
            assert!(r
                .proven_classes
                .iter()
                .all(|c| !(c.contains(&p.0) && c.contains(&p.1))));
        }
    }

    #[test]
    fn expired_deadline_degrades_deterministically() {
        // With the deadline already gone, every jobs value must
        // produce the identical sound partial report: nothing proven,
        // all surviving pairs unresolved in the same order.
        let net = workload_net(17);
        let run = |jobs: usize| {
            let cfg = SweepConfig {
                jobs,
                seed: 17,
                ..SweepConfig::default()
            };
            let mut g = SimGen::new(SimGenConfig::default().with_seed(17));
            ParallelSweeper::new(cfg).run_under(&net, &mut g, &Deadline::after(Duration::ZERO))
        };
        let r1 = run(1);
        assert!(r1.interrupted);
        assert!(r1.proven_classes.is_empty());
        assert!(!r1.unresolved.is_empty(), "pairs survive simulation");
        assert_eq!(r1.stats.sat_calls, 0, "no proof may start");
        for jobs in [2usize, 4] {
            let rj = run(jobs);
            assert!(rj.interrupted, "jobs={jobs}");
            assert_eq!(rj.proven_classes, r1.proven_classes, "jobs={jobs}");
            assert_eq!(rj.unresolved, r1.unresolved, "jobs={jobs}");
            assert_eq!(rj.stats.aborted, r1.stats.aborted, "jobs={jobs}");
            assert_eq!(
                rj.stats.history.len(),
                r1.stats.history.len(),
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn certified_parallel_sweep_is_jobs_invariant() {
        // Certification must not disturb the determinism contract:
        // identical classes and deterministic stats for any jobs
        // value, zero failures on a healthy engine, and the same
        // merges an uncertified run produces.
        let net = workload_net(9);
        let run = |jobs: usize, certify: bool| {
            let cfg = SweepConfig {
                jobs,
                certify,
                seed: 9,
                ..SweepConfig::default()
            };
            let mut g = SimGen::new(SimGenConfig::default().with_seed(9));
            ParallelSweeper::new(cfg).run(&net, &mut g)
        };
        let plain = run(1, false);
        let r1 = run(1, true);
        assert_eq!(r1.proven_classes, plain.proven_classes);
        assert_eq!(r1.stats.certification_failures, 0);
        assert!(r1.quarantined.is_empty());
        assert!(r1.stats.solver.proof_clauses > 0);
        for jobs in [2usize, 4] {
            let rj = run(jobs, true);
            assert_eq!(rj.proven_classes, r1.proven_classes, "jobs {jobs}");
            assert_eq!(rj.unresolved, r1.unresolved);
            assert_eq!(rj.stats.solver, r1.stats.solver);
            assert_eq!(
                rj.stats.dispatch.as_ref().unwrap().proofs,
                r1.stats.dispatch.as_ref().unwrap().proofs
            );
        }
    }

    #[test]
    fn dispatch_totals_survive_worker_respawns() {
        // Panics respawn worker state; the merge-side totals must
        // still account for every completed job, for any jobs value.
        let net = workload_net(19);
        let run = |jobs: usize| {
            let cfg = SweepConfig {
                jobs,
                seed: 19,
                ..SweepConfig::default()
            };
            let mut g = SimGen::new(SimGenConfig::default().with_seed(19));
            ParallelSweeper::new(cfg)
                .with_panic_injection(|_, cand| cand.index() % 3 == 0)
                .run(&net, &mut g)
        };
        let r1 = run(1);
        let d1 = r1.stats.dispatch.clone().unwrap();
        assert!(d1.panics > 0, "injection sanity");
        // Completed proofs + panicked jobs account for every verdict.
        assert_eq!(
            d1.proofs + d1.panics,
            r1.stats.proved_equivalent + r1.stats.disproved + r1.stats.aborted
        );
        for jobs in [2usize, 4] {
            let rj = run(jobs);
            let dj = rj.stats.dispatch.clone().unwrap();
            assert_eq!(dj.proofs, d1.proofs, "jobs {jobs}");
            assert_eq!(dj.panics, d1.panics, "jobs {jobs}");
            assert_eq!(dj.conflicts, d1.conflicts, "jobs {jobs}");
            assert_eq!(dj.timeouts, d1.timeouts, "jobs {jobs}");
            assert_eq!(rj.stats.sat_calls, r1.stats.sat_calls, "jobs {jobs}");
            assert_eq!(rj.stats.solver, r1.stats.solver, "jobs {jobs}");
        }
    }

    #[test]
    fn worker_stats_cover_all_proofs() {
        let net = workload_net(5);
        let cfg = SweepConfig {
            jobs: 4,
            seed: 5,
            ..SweepConfig::default()
        };
        let mut g = SimGen::new(SimGenConfig::default().with_seed(5));
        let r = ParallelSweeper::new(cfg).run(&net, &mut g);
        let d = r.stats.dispatch.as_ref().unwrap();
        assert_eq!(d.jobs, 4);
        assert!(d.rounds >= 1);
        assert_eq!(
            d.total_proofs(),
            r.stats.proved_equivalent + r.stats.disproved + r.stats.aborted
        );
    }

    /// A net whose sweep deterministically needs *two* dispatch
    /// rounds: `z1`/`z2` differ from `x1`/`x2` only on the all-ones
    /// minterm of twelve PIs, which 64 random patterns essentially
    /// never sample, so the four lookalikes land in one class. Round
    /// one proves `(rep, x1)` and `(rep, x2)` and disproves `(rep,
    /// z1)` and `(rep, z2)`; the counterexample flush regroups the
    /// split-off pair into `{z1, z2}`, which round two proves.
    ///
    /// Node indices are deterministic: PIs `0..=11`, AND-tree nodes
    /// `12..=22`, then `x1 = 23`, `x2 = 24`, `z1 = 25`, `z2 = 26` —
    /// so a capture-free panic trigger can select round-one pairs by
    /// `rep.index() < 23`.
    pub(super) fn multiround_net() -> LutNetwork {
        let mut net = LutNetwork::new();
        let pis: Vec<NodeId> = (0..12).map(|i| net.add_pi(format!("p{i}"))).collect();
        let mut layer = pis.clone();
        while layer.len() > 1 {
            let mut next = Vec::new();
            for ch in layer.chunks(2) {
                match ch {
                    [a, b] => next.push(net.add_lut(vec![*a, *b], TruthTable::and2()).unwrap()),
                    [a] => next.push(*a),
                    _ => unreachable!(),
                }
            }
            layer = next;
        }
        let all = layer[0];
        let x1 = net
            .add_lut(vec![pis[0], pis[1]], TruthTable::and2())
            .unwrap();
        let x2 = net
            .add_lut(vec![pis[1], pis[0]], TruthTable::and2())
            .unwrap();
        let z1 = net.add_lut(vec![x1, all], TruthTable::xor2()).unwrap();
        let z2 = net.add_lut(vec![all, x2], TruthTable::xor2()).unwrap();
        assert_eq!(z2.index(), 26, "multiround_net layout drifted");
        net.add_po(z1, "z1");
        net.add_po(z2, "z2");
        net.add_po(all, "all");
        net
    }

    fn multiround_cfg(seed: u64, jobs: usize) -> SweepConfig {
        SweepConfig {
            seed,
            guided_iterations: 0,
            jobs,
            ..SweepConfig::default()
        }
    }

    /// Runs the multi-round workload with (or without) a journal and
    /// returns the stripped RunReport plus the raw sweep report.
    fn multiround_run(
        seed: u64,
        jobs: usize,
        journal: Option<&mut SweepJournal>,
        trigger: Option<fn(NodeId, NodeId) -> bool>,
    ) -> (String, SweepReport) {
        let net = multiround_net();
        let cfg = multiround_cfg(seed, jobs);
        let mut obs = simgen_obs::Observer::enabled();
        let mut g = simgen_core::RandomPatterns::new(seed, 64);
        let mut sweeper = ParallelSweeper::new(cfg);
        if let Some(t) = trigger {
            sweeper = sweeper.with_panic_injection(t);
        }
        let report =
            sweeper.run_checkpointed(&net, &mut g, &Deadline::never(), &mut obs, None, journal);
        let run_report = crate::report::sweep_run_report(
            crate::report::RunMeta {
                command: "sweep".to_string(),
                argv: vec!["sweep".to_string(), "multiround.blif".to_string()],
                design: crate::report::design_info(&net, "multiround", "multiround.blif"),
            },
            &cfg,
            &report,
            &obs,
        );
        (run_report.deterministic_json(), report)
    }

    fn journal_lines(dir: &std::path::Path) -> Vec<String> {
        std::fs::read_to_string(dir.join(crate::journal::JOURNAL_FILE))
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect()
    }

    #[test]
    fn journaled_run_report_matches_plain_run() {
        let dir = std::env::temp_dir().join(format!("simgen_resume_eq_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        for jobs in [1usize, 4] {
            let (plain, report) = multiround_run(0, jobs, None, None);
            assert_eq!(
                report.stats.dispatch.as_ref().unwrap().rounds,
                2,
                "workload must exercise two rounds"
            );
            let mut j = SweepJournal::create(&dir, false).unwrap();
            let (journaled, _) = multiround_run(0, jobs, Some(&mut j), None);
            assert_eq!(journaled, plain, "jobs {jobs}");
            // Journal holds the meta line plus one line per round.
            assert_eq!(journal_lines(&dir).len(), 3);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_replays_journaled_rounds_without_reproving() {
        let dir = std::env::temp_dir().join(format!("simgen_resume_tr_{}", std::process::id()));
        for jobs in [1usize, 4] {
            let _ = std::fs::remove_dir_all(&dir);
            let (reference, _) = multiround_run(0, jobs, None, None);
            let mut j = SweepJournal::create(&dir, false).unwrap();
            let _ = multiround_run(0, jobs, Some(&mut j), None);
            drop(j);
            // Keep only the meta line and round one — the state a
            // SIGKILL between the two round barriers leaves behind.
            let lines = journal_lines(&dir);
            std::fs::write(
                dir.join(crate::journal::JOURNAL_FILE),
                format!("{}\n{}\n", lines[0], lines[1]),
            )
            .unwrap();
            // The panic trigger fires on every round-one pair (their
            // reps are AND-tree nodes, index < 23): if resume
            // re-dispatched any of them the prover would panic, the
            // pair would be quarantined, and the report would differ.
            let mut j = SweepJournal::create(&dir, true).unwrap();
            let (resumed, report) =
                multiround_run(0, jobs, Some(&mut j), Some(|rep, _| rep.index() < 23));
            assert!(report.quarantined.is_empty(), "round one was re-proven");
            assert_eq!(resumed, reference, "jobs {jobs}");
            // The live second round re-committed: journal is whole
            // again.
            assert_eq!(journal_lines(&dir).len(), 3);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_with_complete_journal_dispatches_nothing() {
        let dir = std::env::temp_dir().join(format!("simgen_resume_full_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (reference, _) = multiround_run(0, 1, None, None);
        let mut j = SweepJournal::create(&dir, false).unwrap();
        let _ = multiround_run(0, 1, Some(&mut j), None);
        drop(j);
        // Every pair re-dispatched would panic — a fully journaled
        // run must replay end to end without a single proof job.
        let mut j = SweepJournal::create(&dir, true).unwrap();
        let (resumed, report) = multiround_run(0, 1, Some(&mut j), Some(|_, _| true));
        assert!(report.quarantined.is_empty());
        assert_eq!(resumed, reference);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_crosses_job_counts() {
        // The fingerprint deliberately excludes `jobs`: a journal
        // written by a serial run resumes under four workers (and
        // vice versa) with a byte-identical report.
        let dir = std::env::temp_dir().join(format!("simgen_resume_xj_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (reference, _) = multiround_run(0, 4, None, None);
        let mut j = SweepJournal::create(&dir, false).unwrap();
        let _ = multiround_run(0, 1, Some(&mut j), None);
        drop(j);
        let lines = journal_lines(&dir);
        std::fs::write(
            dir.join(crate::journal::JOURNAL_FILE),
            format!("{}\n{}\n", lines[0], lines[1]),
        )
        .unwrap();
        let mut j = SweepJournal::create(&dir, true).unwrap();
        let (resumed, _) = multiround_run(0, 4, Some(&mut j), None);
        assert_eq!(resumed, reference);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_journal_from_other_config_is_ignored() {
        let dir = std::env::temp_dir().join(format!("simgen_resume_st_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut j = SweepJournal::create(&dir, false).unwrap();
        let _ = multiround_run(0, 1, Some(&mut j), None);
        drop(j);
        // Different seed → different fingerprint: resume must discard
        // the journal and prove everything live, matching a fresh
        // seed-3 run exactly.
        let (reference, _) = multiround_run(3, 1, None, None);
        let mut j = SweepJournal::create(&dir, true).unwrap();
        let (resumed, report) = multiround_run(3, 1, Some(&mut j), None);
        assert!(report.stats.sat_calls > 0);
        assert_eq!(resumed, reference);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
