//! Trust-but-verify: independent certification of engine answers.
//!
//! A sweep's verdicts rest on two engines — the CDCL solver (for
//! "equivalent") and the simulation/SAT model extraction (for
//! "inequivalent"). With [`SweepConfig::certify`](crate::SweepConfig)
//! enabled, neither answer is taken on faith:
//!
//! * every `Equivalent` answer must carry a DRAT proof that the
//!   independent backward RUP checker in [`simgen_sat::drat`]
//!   accepts, and
//! * every counterexample must be replayed through the scalar
//!   reference evaluator ([`simgen_sim::replay`]) — which shares no
//!   code with the compiled simulation kernels — and actually
//!   distinguish the pair.
//!
//! A failed check never poisons the sweep: the pair is demoted to
//! quarantine (the same sound degradation path panics use) and the
//! failure is counted in
//! [`SweepStats::certification_failures`](crate::SweepStats), which
//! drives exit code 3. Soundness is preserved because quarantined
//! pairs are never merged and never refine classes.

use simgen_netlist::{LutNetwork, NodeId};
use simgen_sim::Replayer;

use crate::prove::PairProver;

/// Default bound on recorded DRAT proof text per prover. Generous —
/// pair cones are small — but finite, so a pathological query cannot
/// hold the proof log hostage; overflowing it fails certification
/// for that prover rather than aborting the sweep.
pub const PROOF_BYTE_BUDGET: u64 = 64 << 20;

/// Checks the DRAT certificate behind the prover's most recent
/// `Equivalent` answer. `false` means the answer must not be trusted:
/// no certificate was available (proof log overflowed or missing) or
/// the backward RUP checker rejected it.
pub fn certify_equivalence(prover: &PairProver<'_>) -> bool {
    match prover.certificate() {
        Some(cert) => cert.check().is_ok(),
        None => false,
    }
}

/// Replays a counterexample through the scalar reference evaluator:
/// `true` iff `inputs` really drives `a` and `b` apart. Malformed
/// vectors (wrong length) fail replay instead of panicking.
pub fn certify_counterexample(
    net: &LutNetwork,
    replayer: &mut Replayer,
    inputs: &[bool],
    a: NodeId,
    b: NodeId,
) -> bool {
    replayer.distinguishes(net, inputs, a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simgen_netlist::TruthTable;

    fn two_ands() -> (LutNetwork, NodeId, NodeId, NodeId) {
        let mut net = LutNetwork::new();
        let a = net.add_pi("a");
        let b = net.add_pi("b");
        let x = net.add_lut(vec![a, b], TruthTable::and2()).unwrap();
        let y = net.add_lut(vec![b, a], TruthTable::and2()).unwrap();
        let z = net.add_lut(vec![a, b], TruthTable::or2()).unwrap();
        net.add_po(x, "x");
        net.add_po(y, "y");
        net.add_po(z, "z");
        (net, x, y, z)
    }

    #[test]
    fn equivalent_answers_certify() {
        let (net, x, y, _) = two_ands();
        let mut p = PairProver::new(&net);
        p.enable_certification(PROOF_BYTE_BUDGET);
        assert_eq!(p.prove(x, y, None), crate::ProveOutcome::Equivalent);
        assert!(certify_equivalence(&p));
    }

    #[test]
    fn uncertified_prover_fails_certification() {
        // Without proof logging there is no certificate: the check
        // must fail closed, not pass silently.
        let (net, x, y, _) = two_ands();
        let mut p = PairProver::new(&net);
        assert_eq!(p.prove(x, y, None), crate::ProveOutcome::Equivalent);
        assert!(!certify_equivalence(&p));
    }

    #[test]
    fn counterexamples_replay_through_scalar_eval() {
        let (net, x, _, z) = two_ands();
        let mut p = PairProver::new(&net);
        p.enable_certification(PROOF_BYTE_BUDGET);
        let mut replayer = Replayer::new();
        match p.prove(x, z, None) {
            crate::ProveOutcome::Counterexample(v) => {
                assert!(certify_counterexample(&net, &mut replayer, &v, x, z));
                // And after a Sat answer there is no certificate.
                assert!(!certify_equivalence(&p));
            }
            other => panic!("expected counterexample, got {other:?}"),
        }
        // A vector that does not distinguish the pair is rejected.
        assert!(!certify_counterexample(
            &net,
            &mut replayer,
            &[true, true],
            x,
            z
        ));
        // As is a malformed one.
        assert!(!certify_counterexample(&net, &mut replayer, &[true], x, z));
    }

    #[test]
    fn incremental_queries_keep_certifying() {
        let (net, x, y, z) = two_ands();
        let mut p = PairProver::new(&net);
        p.enable_certification(PROOF_BYTE_BUDGET);
        assert_eq!(p.prove(x, y, None), crate::ProveOutcome::Equivalent);
        assert!(certify_equivalence(&p));
        p.assert_equal(x, y);
        assert!(matches!(
            p.prove(y, z, None),
            crate::ProveOutcome::Counterexample(_)
        ));
        assert_eq!(p.prove(x, y, None), crate::ProveOutcome::Equivalent);
        assert!(certify_equivalence(&p));
    }
}
