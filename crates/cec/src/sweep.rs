//! The SAT sweeping loop: random simulation → guided pattern
//! generation → SAT resolution with counterexample feedback.

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use simgen_core::PatternGenerator;
use simgen_dispatch::{BudgetSchedule, Deadline, EnginePolicy, Progress, Watchdog};
use simgen_netlist::{LutNetwork, NodeId};
use simgen_obs::{Counter, Json, Observer, Phase, Trace};
use simgen_sim::{EquivClasses, PatternSet, Replayer, SimResult};

use crate::prove::{BddProver, EquivProver, ProveOutcome};
use crate::stats::{IterationRecord, SweepStats};

/// Which verification engine resolves the surviving pairs (the
/// "BDD or SAT" choice of the paper's Figure 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProofEngine {
    /// Incremental CDCL SAT (the paper's configuration).
    Sat,
    /// Monolithic BDDs with a blow-up node limit; queries that hit
    /// the limit are reported unresolved.
    Bdd {
        /// Maximum live BDD nodes before giving up.
        node_limit: usize,
    },
}

/// Sweep parameters (defaults follow the paper's Section 6.1 setup:
/// one round of random simulation, then 20 guided iterations).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SweepConfig {
    /// Rounds of random simulation before the guided phase.
    pub random_rounds: usize,
    /// Random vectors per round (64 = one machine word).
    pub random_batch: usize,
    /// Guided-generator iterations.
    pub guided_iterations: usize,
    /// Conflict budget per SAT call (`None` = unbounded).
    pub sat_budget: Option<u64>,
    /// Whether to run the SAT resolution phase at all (the cost/
    /// runtime experiments of Section 6.2 stop after simulation).
    pub run_sat: bool,
    /// The verification engine used in the resolution phase.
    pub proof: ProofEngine,
    /// Seed for the random-simulation RNG.
    pub seed: u64,
    /// Worker threads for the SAT-resolution phase. `1` keeps the
    /// fully serial incremental sweep; larger values dispatch pairs
    /// through [`crate::ParallelSweeper`]'s work-stealing pool.
    pub jobs: usize,
    /// Budget-escalation ladder for the parallel sweeper (`None` =
    /// a single attempt at [`SweepConfig::sat_budget`] per pair).
    /// Ignored by the serial sweeper.
    pub budget_schedule: Option<BudgetSchedule>,
    /// Per-pair stall threshold: when no pair resolves for this long,
    /// the watchdog interrupts whatever is in flight (the stuck pair
    /// ends `Undecided`) and the sweep moves on. `None` disables
    /// stall detection.
    pub stall: Option<Duration>,
    /// Trust-but-verify mode: every `Equivalent` answer must carry a
    /// DRAT certificate the independent checker accepts, and every
    /// counterexample must replay through the scalar reference
    /// evaluator. Failed checks quarantine the pair (counted in
    /// [`SweepStats::certification_failures`](crate::SweepStats)).
    /// Since BDD answers carry no DRAT proof, certification forces
    /// the SAT engine and skips the BDD fallback.
    pub certify: bool,
    /// Per-pair engine-selection policy: engine ordering
    /// ([`simgen_dispatch::EngineMode`]) and whether SAT queries run
    /// against one long-lived assumption-scoped solver per fanin
    /// region (`incremental`, the default) or a cold solver per pair.
    pub engine: EnginePolicy,
    /// Memory budget in bytes for the sweep's dominant allocations
    /// (clause databases, lane tables, proof logs). When the
    /// [`crate::govern::MemoryGovernor`] estimate crosses the budget,
    /// the sweep trips its own deadline and the run ends
    /// `ResourceExhausted` instead of growing toward an OOM kill.
    /// Non-semantic: excluded from the journal fingerprint and the
    /// proof-cache configuration, like deadlines. `None` disables
    /// accounting.
    pub mem_budget: Option<u64>,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            random_rounds: 1,
            random_batch: 64,
            guided_iterations: 20,
            sat_budget: Some(100_000),
            run_sat: true,
            proof: ProofEngine::Sat,
            seed: 0xC1C,
            jobs: 1,
            budget_schedule: None,
            stall: None,
            certify: false,
            engine: EnginePolicy::default(),
            mem_budget: None,
        }
    }
}

/// Everything a sweep run produces.
#[derive(Clone, Debug)]
pub struct SweepReport {
    /// Collected metrics.
    pub stats: SweepStats,
    /// Class cost (Equation 5) after the simulation phase, before SAT.
    pub cost_after_sim: u64,
    /// Groups of nodes proven functionally equivalent by SAT.
    pub proven_classes: Vec<Vec<NodeId>>,
    /// Pairs no prover resolved — budget exhausted, deadline expired,
    /// or (parallel only) quarantined after a prover panic. Every
    /// entry also appears in the per-cause breakdowns; none of them
    /// is ever merged, which is what keeps partial results sound.
    pub unresolved: Vec<(NodeId, NodeId)>,
    /// The subset of [`SweepReport::unresolved`] that was quarantined
    /// because its proof could not be trusted: the prover panicked
    /// (parallel sweeps only — serial proofs run on the caller's own
    /// thread, where a panic propagates) or certification rejected
    /// the engine's answer.
    pub quarantined: Vec<(NodeId, NodeId)>,
    /// True when the deadline expired (or was tripped) before the
    /// sweep finished; the report is then a sound partial result.
    pub interrupted: bool,
    /// True when the interruption was the sweep's own
    /// [`SweepConfig::mem_budget`] governor rather than an external
    /// deadline: the estimated resident footprint crossed the budget
    /// and the run shed its remaining work instead of growing.
    pub mem_exhausted: bool,
    /// All simulation patterns accumulated during the sweep.
    pub patterns: PatternSet,
}

/// The sweeping engine.
#[derive(Clone, Debug)]
pub struct Sweeper {
    config: SweepConfig,
}

impl Sweeper {
    /// Creates a sweeper with the given configuration.
    pub fn new(config: SweepConfig) -> Self {
        Sweeper { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &SweepConfig {
        &self.config
    }

    /// Runs the full sweep on `net` using `generator` for the guided
    /// phase, with no deadline.
    pub fn run(&self, net: &LutNetwork, generator: &mut dyn PatternGenerator) -> SweepReport {
        self.run_under(net, generator, &Deadline::never())
    }

    /// Runs the full sweep as an *anytime* computation: when
    /// `deadline` expires (or is tripped), the in-flight proof is
    /// interrupted, every remaining pair is reported unresolved, and
    /// the partial report is returned — sound, just less merged.
    pub fn run_under(
        &self,
        net: &LutNetwork,
        generator: &mut dyn PatternGenerator,
        deadline: &Deadline,
    ) -> SweepReport {
        self.run_observed(net, generator, deadline, &mut Observer::disabled())
    }

    /// [`Sweeper::run_under`] with instrumentation: per-phase timings
    /// and counters land in `obs.recorder`, decision-level events
    /// (proof outcomes, flushes, deadline trips) in `obs.trace`. With
    /// [`Observer::disabled`] every instrumentation site is a branch
    /// over a dead flag.
    pub fn run_observed(
        &self,
        net: &LutNetwork,
        generator: &mut dyn PatternGenerator,
        deadline: &Deadline,
        obs: &mut Observer,
    ) -> SweepReport {
        self.run_cached(net, generator, deadline, obs, None)
    }

    /// [`Sweeper::run_observed`] consulting a content-addressed proof
    /// cache: each candidate pair is looked up by the merkle hash of
    /// its canonical cones before any SAT work, and live verdicts are
    /// stored back for later runs. Cached counterexamples are trusted
    /// only after scalar replay; cached equivalences, under
    /// [`SweepConfig::certify`], only after their stored DRAT blob
    /// passes the independent checker — rejected entries are evicted
    /// and the pair is proven live (see [`crate::cache`]).
    pub fn run_cached(
        &self,
        net: &LutNetwork,
        generator: &mut dyn PatternGenerator,
        deadline: &Deadline,
        obs: &mut Observer,
        cache: Option<&simgen_cache::ProofCache>,
    ) -> SweepReport {
        let cfg = &self.config;
        let SimPhases {
            mut stats,
            mut patterns,
            mut sim,
            classes,
        } = run_sim_phases(cfg, net, generator, deadline, obs);
        let cost_after_sim = classes.cost();

        // Phase 3: SAT resolution with counterexample feedback.
        let mut proven: Vec<Vec<NodeId>> = Vec::new();
        let mut unresolved: Vec<(NodeId, NodeId)> = Vec::new();
        let mut quarantined: Vec<(NodeId, NodeId)> = Vec::new();
        let mut interrupted = false;
        let mut mem_exhausted = false;
        if cfg.run_sat {
            let progress = Progress::default();
            let _watchdog = spawn_watchdog(cfg, deadline, &progress, &obs.trace);
            let sat_start = obs.recorder.is_enabled().then(std::time::Instant::now);
            let resim_before = stats.resim_time;
            let mut prover: Box<dyn EquivProver + '_> = match cfg.proof {
                // BDD answers carry no DRAT proof: under certify the
                // resolution phase falls back to the SAT engine, whose
                // answers are checkable.
                ProofEngine::Bdd { node_limit } if !cfg.certify => {
                    Box::new(BddProver::new(net, node_limit))
                }
                // The engine ladder: optional BDD primary (under
                // `EngineMode::BddFirst`), then scoped SAT against
                // one solver per fanin region — or a cold solver per
                // pair when `cfg.engine.incremental` is off.
                _ => Box::new(crate::region::SerialEngine::new(
                    net,
                    cfg.engine,
                    cfg.certify,
                    cfg.budget_schedule.map(|s| s.bdd_node_limit),
                    deadline,
                )),
            };
            let mut replayer = Replayer::new();
            let mut sweep_cache = cache.map(|c| crate::cache::SweepCache::new(c, cfg.certify));
            let mut work: Vec<Vec<NodeId>> = classes.classes().to_vec();
            let mut merged: Vec<Vec<NodeId>> = Vec::new();
            // Counterexamples are not resimulated one at a time:
            // they accumulate in `pending` (with the disproved
            // candidates parked in `benched`) until a full 64-bit
            // machine word is buffered or no provable pair remains,
            // then one word-parallel resimulation refines everything
            // at once. Benched candidates sit out until the flush so
            // a disproved pair is never re-proved before the pattern
            // that separates it lands in the signatures.
            let mut pending: Vec<Vec<bool>> = Vec::new();
            let mut benched: Vec<(NodeId, NodeId)> = Vec::new();
            let mut governor = crate::govern::MemoryGovernor::new(cfg.mem_budget);
            loop {
                // Memory governance: fold the engines' byte gauges and
                // trip the shared deadline when they cross the budget —
                // the next check below then sheds the remaining pairs.
                if governor.note(crate::govern::estimate_resident(
                    &prover.solver_stats().unwrap_or_default(),
                    &sim.pool_stats(),
                )) {
                    mem_exhausted = true;
                    deadline.trip();
                    obs.trace.emit(
                        "mem_budget_exhausted",
                        vec![("estimate_bytes", Json::U64(governor.peak()))],
                    );
                }
                if deadline.expired() {
                    // Graceful degradation: whatever is still paired
                    // up was not proven, so it is reported unresolved
                    // — never merged. Pending counterexamples are
                    // dropped (their pairs are already split).
                    interrupted = true;
                    obs.recorder.add(Counter::DeadlineTrips, 1);
                    for class in work.iter().filter(|c| c.len() >= 2) {
                        let rep = class[0];
                        for &cand in &class[1..] {
                            stats.aborted += 1;
                            unresolved.push((rep, cand));
                        }
                    }
                    obs.trace.emit(
                        "sweep_deadline_expired",
                        vec![("unresolved", Json::U64(unresolved.len() as u64))],
                    );
                    break;
                }
                // Resolve pairs shallowest-candidate-first: proofs of
                // deep pairs then reuse the already-asserted
                // equivalences of their fanin cones (the fraig
                // induction order).
                let Some(ci) = work
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| c.len() >= 2)
                    .min_by_key(|(_, c)| (net.level(c[1]), c[1]))
                    .map(|(i, _)| i)
                else {
                    if pending.is_empty() {
                        break;
                    }
                    let t = Instant::now();
                    work = flush_counterexamples(
                        net,
                        &mut patterns,
                        &mut sim,
                        work,
                        &mut pending,
                        &mut benched,
                        cfg.jobs.max(1),
                        obs,
                    );
                    let elapsed = t.elapsed();
                    stats.sim_time += elapsed;
                    stats.resim_time += elapsed;
                    continue;
                };
                let rep = work[ci][0];
                let cand = work[ci][1];
                // A trusted cache hit replaces the SAT call entirely
                // (its trust checks already ran inside `resolve`).
                let cached =
                    sweep_cache
                        .as_mut()
                        .and_then(|sc| match sc.resolve(net, rep, cand, obs) {
                            crate::cache::CacheLookup::Hit(outcome) => Some(outcome),
                            crate::cache::CacheLookup::Miss => None,
                        });
                let from_cache = cached.is_some();
                let outcome = match cached {
                    Some(outcome) => outcome,
                    None => {
                        obs.recorder.add(Counter::ProofsDispatched, 1);
                        prover.prove(rep, cand, cfg.sat_budget)
                    }
                };
                progress.tick();
                if obs.trace.is_enabled() {
                    let verdict = match &outcome {
                        ProveOutcome::Equivalent => "equivalent",
                        ProveOutcome::Counterexample(_) => "disproved",
                        ProveOutcome::Undecided { .. } => "undecided",
                    };
                    obs.trace.emit(
                        "proof",
                        vec![
                            ("rep", Json::U64(rep.index() as u64)),
                            ("cand", Json::U64(cand.index() as u64)),
                            ("verdict", Json::Str(verdict.to_string())),
                        ],
                    );
                }
                // Trust-but-verify: before an answer refines anything,
                // certify it through a path independent of the engine
                // that produced it. A rejected answer quarantines the
                // pair — it is never merged and never splits a class.
                // (Cache hits already cleared the same bar in
                // `resolve`, so only live answers are checked here.)
                if cfg.certify && !from_cache {
                    let cert_failed = match &outcome {
                        ProveOutcome::Equivalent => {
                            obs.recorder.add(Counter::CertificatesChecked, 1);
                            let ok = prover.certify_last();
                            if !ok {
                                obs.recorder.add(Counter::CertificatesFailed, 1);
                            }
                            !ok
                        }
                        ProveOutcome::Counterexample(v) => {
                            obs.recorder.add(Counter::CexReplays, 1);
                            let ok = replayer.distinguishes(net, v, rep, cand);
                            if !ok {
                                obs.recorder.add(Counter::CexReplayFailures, 1);
                            }
                            !ok
                        }
                        ProveOutcome::Undecided { .. } => false,
                    };
                    if cert_failed {
                        stats.certification_failures += 1;
                        stats.aborted += 1;
                        obs.recorder.add(Counter::ProofsQuarantined, 1);
                        obs.trace.emit(
                            "certification_failed",
                            vec![
                                ("rep", Json::U64(rep.index() as u64)),
                                ("cand", Json::U64(cand.index() as u64)),
                            ],
                        );
                        unresolved.push((rep, cand));
                        quarantined.push((rep, cand));
                        work[ci].remove(1);
                        if work[ci].len() < 2 {
                            work.remove(ci);
                        }
                        continue;
                    }
                }
                // A fresh live verdict (certified if required) is a
                // fact about the cones: publish it for later runs.
                if !from_cache {
                    if let Some(sc) = sweep_cache.as_mut() {
                        let proof = if cfg.certify {
                            prover.proof_blob()
                        } else {
                            None
                        };
                        sc.store(net, rep, cand, &outcome, proof, obs);
                    }
                }
                match outcome {
                    ProveOutcome::Equivalent => {
                        stats.proved_equivalent += 1;
                        obs.recorder.add(Counter::ProofsEquivalent, 1);
                        // Feed the equivalence back into the solver so
                        // deeper proofs reuse it (fraig-style merging).
                        prover.assert_equal(rep, cand);
                        work[ci].remove(1);
                        record_merge(&mut merged, rep, cand);
                        if work[ci].len() < 2 {
                            work.remove(ci);
                        }
                    }
                    ProveOutcome::Counterexample(v) => {
                        stats.disproved += 1;
                        obs.recorder.add(Counter::ProofsDisproved, 1);
                        // Figure 2's feedback arrow: the generator may
                        // learn from counterexamples (e.g. 1-distance).
                        generator.observe_counterexample(&v);
                        pending.push(v);
                        benched.push((cand, rep));
                        work[ci].remove(1);
                        if work[ci].len() < 2 {
                            work.remove(ci);
                        }
                        if pending.len() >= CEX_FLUSH_THRESHOLD {
                            let t = Instant::now();
                            work = flush_counterexamples(
                                net,
                                &mut patterns,
                                &mut sim,
                                work,
                                &mut pending,
                                &mut benched,
                                cfg.jobs.max(1),
                                obs,
                            );
                            let elapsed = t.elapsed();
                            stats.sim_time += elapsed;
                            stats.resim_time += elapsed;
                        }
                    }
                    ProveOutcome::Undecided { .. } => {
                        stats.aborted += 1;
                        obs.recorder.add(Counter::ProofsUndecided, 1);
                        unresolved.push((rep, cand));
                        work[ci].remove(1);
                        if work[ci].len() < 2 {
                            work.remove(ci);
                        }
                    }
                }
            }
            stats.sat_calls = prover.calls();
            stats.sat_time = prover.time();
            stats.solver = prover.solver_stats().unwrap_or_default();
            let scope_metrics = prover.metrics();
            obs.recorder
                .add(Counter::ScopesOpened, scope_metrics.scopes_opened);
            obs.recorder
                .add(Counter::ClausesReused, scope_metrics.clauses_reused);
            obs.recorder
                .add(Counter::WarmSolves, scope_metrics.warm_solves);
            obs.recorder.add(Counter::SolverRebuilds, prover.rebuilds());
            proven = merged;
            if let Some(start) = sat_start {
                // The flushes inside the loop already booked their
                // time to the resim phase; keep the two disjoint.
                let elapsed = start
                    .elapsed()
                    .saturating_sub(stats.resim_time - resim_before);
                obs.recorder.add_wall(Phase::SatResolution, elapsed);
                obs.recorder.add_cpu(Phase::SatResolution, elapsed);
            }
        }
        stats.exec = sim.exec_stats();
        stats.pool = sim.pool_stats();
        record_exec_counters(obs, &stats.exec);

        SweepReport {
            stats,
            cost_after_sim,
            proven_classes: proven,
            unresolved,
            // Serial proofs run on the caller's thread, so panics
            // propagate instead of quarantining; only certification
            // failures land here.
            quarantined,
            interrupted: interrupted || deadline.expired(),
            mem_exhausted,
            patterns,
        }
    }
}

/// Spawns the watchdog for a proof phase when there is anything for
/// it to watch: a finite deadline (trip the flag the moment it
/// passes) or a stall threshold (trip when `progress` stops moving).
/// Watchdog trips and recoveries land in `trace`.
pub(crate) fn spawn_watchdog(
    cfg: &SweepConfig,
    deadline: &Deadline,
    progress: &Progress,
    trace: &Trace,
) -> Option<Watchdog> {
    if !deadline.is_finite() && cfg.stall.is_none() {
        return None;
    }
    Some(Watchdog::spawn_traced(
        deadline.clone(),
        cfg.stall.map(|window| (progress.clone(), window)),
        trace.clone(),
    ))
}

/// Copies the simulator's execution totals into the deterministic
/// counters (they are `--jobs`-invariant: blocks are word-split the
/// same way for every worker count).
pub(crate) fn record_exec_counters(obs: &mut Observer, exec: &simgen_sim::ExecStats) {
    obs.recorder.add(Counter::SimExecCalls, exec.exec_calls);
    obs.recorder.add(Counter::SimExecWords, exec.exec_words);
    obs.recorder.add(Counter::SimPatterns, exec.exec_patterns);
    obs.recorder
        .add(Counter::ConeExecCalls, exec.cone_exec_calls);
    obs.recorder.add(Counter::ScalarPushes, exec.scalar_pushes);
}

/// Output of the simulation half of a sweep (phases 1–2 of the
/// paper's Figure 2), shared by the serial and parallel sweepers.
pub(crate) struct SimPhases {
    /// Stats with the simulation history filled in.
    pub stats: SweepStats,
    /// Patterns accumulated so far (random + guided).
    pub patterns: PatternSet,
    /// Incremental simulation of `patterns`.
    pub sim: SimResult,
    /// Equivalence classes after refinement.
    pub classes: EquivClasses,
}

/// Phases 1–2: random simulation rounds, then guided iterations.
///
/// The deadline is polled between guided iterations (the only
/// unbounded part); the mandatory random round always runs so the
/// equivalence classes exist. Because the check sits on iteration
/// boundaries and the phases are single-threaded, an expired deadline
/// truncates the history identically for every `jobs` value.
pub(crate) fn run_sim_phases(
    cfg: &SweepConfig,
    net: &LutNetwork,
    generator: &mut dyn PatternGenerator,
    deadline: &Deadline,
    obs: &mut Observer,
) -> SimPhases {
    let mut stats = SweepStats::default();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut iteration = 0usize;

    // Phase 1: random simulation rounds.
    let mut patterns = PatternSet::new(net.num_pis());
    let t = Instant::now();
    for _ in 0..cfg.random_rounds.max(1) {
        let batch = PatternSet::random(net.num_pis(), cfg.random_batch, &mut rng);
        patterns.extend(&batch);
    }
    // Simulated incrementally so later single-vector pushes stay
    // O(nodes) instead of re-running the whole accumulated set. Large
    // random blocks are word-split across the worker pool; the lanes
    // are byte-identical for every jobs value.
    let compile_start = obs.recorder.is_enabled().then(Instant::now);
    let mut sim = SimResult::empty(net);
    let compile_time = compile_start.map(|s| s.elapsed()).unwrap_or_default();
    obs.recorder.add(Counter::KernelCompiles, 1);
    obs.recorder.add_wall(Phase::KernelCompile, compile_time);
    obs.recorder.add_cpu(Phase::KernelCompile, compile_time);
    let kernel = sim.kernel().summary();
    stats.kernel = Some(kernel);
    obs.recorder.add(Counter::KernelTapeOps, kernel.tape_ops);
    obs.trace.emit(
        "kernel_compile",
        vec![
            ("nodes", Json::U64(kernel.nodes)),
            ("fused", Json::U64(kernel.fused)),
            ("tape_nodes", Json::U64(kernel.tape_nodes)),
            ("tape_ops", Json::U64(kernel.tape_ops)),
        ],
    );
    sim.extend_patterns_jobs(net, &patterns, cfg.jobs.max(1));
    generator.observe_simulation(&sim);
    let mut classes = EquivClasses::initial(net, &sim);
    let sim_time = t.elapsed();
    stats.sim_time += sim_time;
    obs.recorder
        .add_wall(Phase::RandomSim, sim_time.saturating_sub(compile_time));
    obs.recorder
        .add_cpu(Phase::RandomSim, sim_time.saturating_sub(compile_time));
    stats.history.push(IterationRecord {
        iteration,
        cost: classes.cost(),
        vectors: patterns.num_patterns(),
        gen_time: std::time::Duration::ZERO,
        sim_time,
    });
    iteration += 1;

    // Phase 2: guided iterations. One scalar-evaluation scratch
    // buffer serves every pushed vector.
    let mut scratch: Vec<bool> = Vec::new();
    for _ in 0..cfg.guided_iterations {
        if deadline.expired() {
            obs.recorder.add(Counter::DeadlineTrips, 1);
            obs.trace.emit(
                "sim_deadline_expired",
                vec![("iteration", Json::U64(iteration as u64))],
            );
            break;
        }
        let t = Instant::now();
        let vectors = generator.generate(net, &classes);
        let gen_time = t.elapsed();
        stats.gen_time += gen_time;
        let t = Instant::now();
        if !vectors.is_empty() {
            for v in &vectors {
                patterns.push(v);
                sim.push_pattern_with(net, v, &mut scratch);
            }
            generator.observe_simulation(&sim);
            classes.refine(&sim);
        }
        let sim_time = t.elapsed();
        stats.sim_time += sim_time;
        let cost = classes.cost();
        obs.recorder.add(Counter::GuidedIterations, 1);
        obs.recorder
            .add(Counter::VectorsGenerated, vectors.len() as u64);
        obs.recorder.add_wall(Phase::GuidedGen, gen_time);
        obs.recorder.add_cpu(Phase::GuidedGen, gen_time);
        obs.recorder.add_wall(Phase::GuidedSim, sim_time);
        obs.recorder.add_cpu(Phase::GuidedSim, sim_time);
        obs.trace.emit(
            "guided_iteration",
            vec![
                ("iteration", Json::U64(iteration as u64)),
                ("vectors", Json::U64(vectors.len() as u64)),
                ("cost", Json::U64(cost)),
            ],
        );
        stats.history.push(IterationRecord {
            iteration,
            cost,
            vectors: vectors.len(),
            gen_time,
            sim_time,
        });
        iteration += 1;
    }

    SimPhases {
        stats,
        patterns,
        sim,
        classes,
    }
}

/// Counterexamples buffered before a batched resimulation: one full
/// 64-bit pattern word, so every flush costs exactly one word-parallel
/// pass over the network.
pub(crate) const CEX_FLUSH_THRESHOLD: usize = 64;

/// Flushes buffered counterexamples through one word-parallel,
/// *cone-restricted* resimulation and re-partitions the working
/// classes (with the benched candidates folded back in) by the
/// updated signatures.
///
/// Only the union of fanin cones of the still-compared nodes — the
/// surviving class members plus the benched candidates, exactly the
/// nodes whose signatures the partition below reads — gets new lane
/// words; everything already resolved to a singleton keeps its stale
/// (shorter) lanes and is never compared again. `benched` entries are
/// `(candidate, origin rep)` pairs: the rep of the class the
/// candidate was disproved out of, which keys the delta partition.
///
/// Returns the refined working classes. `pending` and `benched` are
/// drained.
#[allow(clippy::too_many_arguments)]
pub(crate) fn flush_counterexamples(
    net: &LutNetwork,
    patterns: &mut PatternSet,
    sim: &mut SimResult,
    work: Vec<Vec<NodeId>>,
    pending: &mut Vec<Vec<bool>>,
    benched: &mut Vec<(NodeId, NodeId)>,
    jobs: usize,
    obs: &mut Observer,
) -> Vec<Vec<NodeId>> {
    let resim_start = obs.recorder.is_enabled().then(Instant::now);
    obs.recorder.add(Counter::ResimFlushes, 1);
    obs.recorder.add(Counter::CexBuffered, pending.len() as u64);
    let first_new = sim.num_patterns();
    let block = PatternSet::from_vectors(net.num_pis(), pending);
    pending.clear();
    patterns.extend(&block);
    let roots: Vec<NodeId> = work
        .iter()
        .flatten()
        .copied()
        .chain(benched.iter().map(|&(cand, _)| cand))
        .collect();
    obs.trace.emit(
        "cex_flush",
        vec![
            ("patterns", Json::U64(block.num_patterns() as u64)),
            ("roots", Json::U64(roots.len() as u64)),
        ],
    );
    sim.extend_patterns_cone(net, &block, &roots, jobs);

    // Delta partition keyed on (origin class rep, newly appended
    // signature words). Exact, because simulation only advances at
    // flushes: every current and benched member of one class agrees
    // on all pre-flush patterns, while distinct classes already
    // differ on one — so grouping by origin plus the new words equals
    // the full-signature partition at O(new words) per node. It can
    // only split classes (and slot each benched candidate back beside
    // whichever former classmates it still matches), never merge.
    let from = first_new / 64;
    let sim_ref: &SimResult = sim;
    let mut index: std::collections::HashMap<(NodeId, &[u64]), usize> =
        std::collections::HashMap::new();
    let mut groups: Vec<Vec<NodeId>> = Vec::new();
    let mut slot = |origin: NodeId, n: NodeId, groups: &mut Vec<Vec<NodeId>>| {
        let sig = sim_ref.signature(n);
        let gi = *index
            .entry((origin, &sig[from.min(sig.len())..]))
            .or_insert_with(|| {
                groups.push(Vec::new());
                groups.len() - 1
            });
        groups[gi].push(n);
    };
    for class in &work {
        let origin = class[0];
        for &n in class {
            slot(origin, n, &mut groups);
        }
    }
    for &(cand, origin) in benched.iter() {
        slot(origin, cand, &mut groups);
    }
    benched.clear();
    groups.retain(|g| g.len() >= 2);
    if let Some(start) = resim_start {
        let elapsed = start.elapsed();
        obs.recorder.add_wall(Phase::CexResim, elapsed);
        obs.recorder.add_cpu(Phase::CexResim, elapsed);
    }
    groups
}

/// Partitions nodes into groups of identical full signatures,
/// preserving first-seen order; singleton groups are dropped. Kept as
/// the reference the delta partition in [`flush_counterexamples`] is
/// checked against.
#[cfg(test)]
pub(crate) fn partition_by_signature(nodes: &[NodeId], sim: &SimResult) -> Vec<Vec<NodeId>> {
    let mut index: std::collections::HashMap<&[u64], usize> = std::collections::HashMap::new();
    let mut groups: Vec<Vec<NodeId>> = Vec::new();
    for &n in nodes {
        let gi = *index.entry(sim.signature(n)).or_insert_with(|| {
            groups.push(Vec::new());
            groups.len() - 1
        });
        groups[gi].push(n);
    }
    groups.retain(|g| g.len() >= 2);
    groups
}

/// Adds `cand` to the proven group containing `rep`, or starts a new
/// group.
pub(crate) fn record_merge(groups: &mut Vec<Vec<NodeId>>, rep: NodeId, cand: NodeId) {
    for g in groups.iter_mut() {
        if g.contains(&rep) {
            g.push(cand);
            return;
        }
    }
    groups.push(vec![rep, cand]);
}

/// Re-partitions working classes by the latest signatures, dropping
/// singletons. Kept as the reference implementation that
/// [`partition_by_signature`] is checked against.
#[cfg(test)]
fn refine_groups(groups: Vec<Vec<NodeId>>, sim: &SimResult) -> Vec<Vec<NodeId>> {
    let mut out = Vec::with_capacity(groups.len());
    for g in groups {
        let mut sub: Vec<Vec<NodeId>> = Vec::new();
        'node: for n in g {
            for s in sub.iter_mut() {
                if sim.same_signature(s[0], n) {
                    s.push(n);
                    continue 'node;
                }
            }
            sub.push(vec![n]);
        }
        out.extend(sub.into_iter().filter(|s| s.len() > 1));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use simgen_core::{RandomPatterns, RevSim, SimGen, SimGenConfig};
    use simgen_netlist::TruthTable;

    /// Builds a network with three provably-equivalent AND variants
    /// plus assorted distinct logic.
    fn redundant_net() -> (LutNetwork, Vec<NodeId>) {
        let mut net = LutNetwork::new();
        let a = net.add_pi("a");
        let b = net.add_pi("b");
        let c = net.add_pi("c");
        let and1 = net.add_lut(vec![a, b], TruthTable::and2()).unwrap();
        let and2 = net.add_lut(vec![b, a], TruthTable::and2()).unwrap();
        let na = net.add_lut(vec![a], TruthTable::not1()).unwrap();
        let nb = net.add_lut(vec![b], TruthTable::not1()).unwrap();
        let nor = net.add_lut(vec![na, nb], TruthTable::or2()).unwrap();
        let and3 = net.add_lut(vec![nor], TruthTable::not1()).unwrap();
        let o = net.add_lut(vec![and1, c], TruthTable::or2()).unwrap();
        net.add_po(o, "f");
        net.add_po(and2, "g");
        net.add_po(and3, "h");
        (net, vec![and1, and2, and3])
    }

    #[test]
    fn proves_redundant_ands_equivalent() {
        let (net, ands) = redundant_net();
        let mut gen = SimGen::new(SimGenConfig::default());
        let report = Sweeper::new(SweepConfig::default()).run(&net, &mut gen);
        // All three ANDs end up in one proven class.
        let class = report
            .proven_classes
            .iter()
            .find(|g| g.contains(&ands[0]))
            .expect("a proven class containing and1");
        for n in &ands {
            assert!(class.contains(n), "{n} proven equivalent");
        }
        assert!(report.stats.proved_equivalent >= 2);
        assert!(report.unresolved.is_empty());
    }

    #[test]
    fn certified_serial_sweep_matches_uncertified() {
        // Certification on a healthy engine is pure overhead: same
        // classes, same counts, zero failures, nothing quarantined.
        let (net, ands) = redundant_net();
        let mut gen = SimGen::new(SimGenConfig::default());
        let plain = Sweeper::new(SweepConfig::default()).run(&net, &mut gen);
        let cfg = SweepConfig {
            certify: true,
            ..SweepConfig::default()
        };
        let mut gen = SimGen::new(SimGenConfig::default());
        let certified = Sweeper::new(cfg).run(&net, &mut gen);
        assert_eq!(certified.proven_classes, plain.proven_classes);
        assert_eq!(
            certified.stats.proved_equivalent,
            plain.stats.proved_equivalent
        );
        assert_eq!(certified.stats.disproved, plain.stats.disproved);
        assert_eq!(certified.stats.certification_failures, 0);
        assert!(certified.quarantined.is_empty());
        // The certified run logged proofs; the plain one did not.
        assert!(certified.stats.solver.proof_clauses > 0);
        assert_eq!(plain.stats.solver.proof_clauses, 0);
        assert!(certified
            .proven_classes
            .iter()
            .any(|c| ands.iter().all(|n| c.contains(n))));
    }

    #[test]
    fn certify_forces_sat_engine_over_bdd() {
        // BDD answers carry no DRAT proof, so a certified sweep must
        // route proofs through SAT — and still resolve everything.
        let (net, _) = redundant_net();
        let cfg = SweepConfig {
            proof: ProofEngine::Bdd {
                node_limit: 1 << 20,
            },
            certify: true,
            ..SweepConfig::default()
        };
        let mut gen = SimGen::new(SimGenConfig::default());
        let report = Sweeper::new(cfg).run(&net, &mut gen);
        assert!(report.stats.proved_equivalent >= 2);
        assert_eq!(report.stats.certification_failures, 0);
        // SAT (not BDD) did the work, so proof clauses were recorded.
        assert!(report.stats.solver.proof_clauses > 0);
    }

    #[test]
    fn sat_phase_can_be_disabled() {
        let (net, _) = redundant_net();
        let mut gen = RandomPatterns::new(7, 64);
        let cfg = SweepConfig {
            run_sat: false,
            ..SweepConfig::default()
        };
        let report = Sweeper::new(cfg).run(&net, &mut gen);
        assert_eq!(report.stats.sat_calls, 0);
        assert!(report.proven_classes.is_empty());
        // But the simulation history is fully recorded.
        assert_eq!(report.stats.history.len(), 1 + cfg.guided_iterations);
    }

    #[test]
    fn counterexamples_separate_lookalikes() {
        // Two gates that agree on most inputs: nearly-equal functions
        // survive weak random simulation but SAT must split them.
        let mut net = LutNetwork::new();
        let pis: Vec<NodeId> = (0..6).map(|i| net.add_pi(format!("p{i}"))).collect();
        let f1 = net
            .add_lut(pis.clone(), TruthTable::from_fn(6, |m| m.count_ones() >= 3))
            .unwrap();
        let f2 = net
            .add_lut(
                pis.clone(),
                TruthTable::from_fn(6, |m| m.count_ones() >= 3 || m == 0b000011),
            )
            .unwrap();
        net.add_po(f1, "f1");
        net.add_po(f2, "f2");
        // Tiny random phase so the pair likely collides.
        let cfg = SweepConfig {
            random_rounds: 1,
            random_batch: 2,
            guided_iterations: 0,
            ..SweepConfig::default()
        };
        let mut gen = RandomPatterns::new(1, 0);
        let report = Sweeper::new(cfg).run(&net, &mut gen);
        // Whether or not they collided initially, they must never be
        // proven equivalent.
        assert!(report
            .proven_classes
            .iter()
            .all(|g| !(g.contains(&f1) && g.contains(&f2))));
    }

    #[test]
    fn cost_history_is_monotone() {
        let (net, _) = redundant_net();
        for gen_fn in 0..3 {
            let mut gen: Box<dyn PatternGenerator> = match gen_fn {
                0 => Box::new(RandomPatterns::new(3, 8)),
                1 => Box::new(RevSim::new(3, 10)),
                _ => Box::new(SimGen::new(SimGenConfig::default().with_seed(3))),
            };
            let cfg = SweepConfig {
                random_batch: 4,
                ..SweepConfig::default()
            };
            let report = Sweeper::new(cfg).run(&net, gen.as_mut());
            let costs: Vec<u64> = report.stats.history.iter().map(|r| r.cost).collect();
            assert!(
                costs.windows(2).all(|w| w[1] <= w[0]),
                "cost must never increase: {costs:?}"
            );
        }
    }

    #[test]
    fn guided_strategies_reduce_cost_from_a_stuck_state() {
        // With exactly one all-false-ish random pattern the classes
        // are coarse; SimGen iterations must strictly improve cost.
        let (net, _) = redundant_net();
        let cfg = SweepConfig {
            random_rounds: 1,
            random_batch: 1,
            guided_iterations: 10,
            run_sat: false,
            seed: 1,
            ..SweepConfig::default()
        };
        let mut gen = SimGen::new(SimGenConfig::default().with_seed(2));
        let report = Sweeper::new(cfg).run(&net, &mut gen);
        let first = report.stats.history.first().unwrap().cost;
        let last = report.stats.history.last().unwrap().cost;
        assert!(last <= first);
    }

    #[test]
    fn patterns_accumulate_across_phases() {
        let (net, _) = redundant_net();
        let mut gen = SimGen::new(SimGenConfig::default());
        let cfg = SweepConfig::default();
        let report = Sweeper::new(cfg).run(&net, &mut gen);
        assert!(report.patterns.num_patterns() >= cfg.random_batch);
    }

    #[test]
    fn bdd_engine_matches_sat_engine() {
        let (net, ands) = redundant_net();
        let sat_cfg = SweepConfig::default();
        let bdd_cfg = SweepConfig {
            proof: ProofEngine::Bdd {
                node_limit: 1_000_000,
            },
            ..SweepConfig::default()
        };
        let mut g1 = SimGen::new(SimGenConfig::default());
        let r_sat = Sweeper::new(sat_cfg).run(&net, &mut g1);
        let mut g2 = SimGen::new(SimGenConfig::default());
        let r_bdd = Sweeper::new(bdd_cfg).run(&net, &mut g2);
        // Same proven equivalences from both engines.
        let find = |r: &SweepReport| {
            r.proven_classes
                .iter()
                .find(|c| c.contains(&ands[0]))
                .cloned()
        };
        let c1 = find(&r_sat).expect("sat proves the class");
        let c2 = find(&r_bdd).expect("bdd proves the class");
        assert_eq!(c1, c2);
        assert_eq!(r_sat.stats.proved_equivalent, r_bdd.stats.proved_equivalent);
    }

    #[test]
    fn bdd_engine_node_limit_reports_unresolved() {
        let (net, _) = redundant_net();
        let cfg = SweepConfig {
            proof: ProofEngine::Bdd { node_limit: 1 },
            random_batch: 1,
            ..SweepConfig::default()
        };
        let mut g = SimGen::new(SimGenConfig::default());
        let r = Sweeper::new(cfg).run(&net, &mut g);
        assert_eq!(
            r.stats.proved_equivalent, 0,
            "nothing proven under a 1-node limit"
        );
        // Whatever survived simulation is now unresolved, not merged.
        assert_eq!(r.stats.aborted as usize, r.unresolved.len());
    }

    #[test]
    fn one_distance_generator_receives_counterexamples() {
        // A lookalike pair that initial random sim (tiny batch) is
        // unlikely to split forces SAT counterexamples, which must be
        // fed back to the generator.
        let mut net = LutNetwork::new();
        let pis: Vec<NodeId> = (0..6).map(|i| net.add_pi(format!("p{i}"))).collect();
        let f1 = net
            .add_lut(pis.clone(), TruthTable::from_fn(6, |m| m.count_ones() >= 3))
            .unwrap();
        let f2 = net
            .add_lut(
                pis.clone(),
                TruthTable::from_fn(6, |m| m.count_ones() >= 3 || m == 0b000011),
            )
            .unwrap();
        net.add_po(f1, "f1");
        net.add_po(f2, "f2");
        let cfg = SweepConfig {
            random_rounds: 1,
            random_batch: 1,
            guided_iterations: 2,
            ..SweepConfig::default()
        };
        let mut gen = simgen_core::OneDistance::new(3, 2);
        let report = Sweeper::new(cfg).run(&net, &mut gen);
        if report.stats.disproved > 0 {
            assert!(
                gen.pool_len() > 0,
                "counterexamples must reach the generator"
            );
        }
    }

    #[test]
    fn expired_deadline_yields_sound_partial_report() {
        // Serial sweeper under an already-expired deadline: the
        // random phase still builds classes, but no proof may run and
        // every surviving pair must surface as unresolved.
        let (net, ands) = redundant_net();
        let mut gen = SimGen::new(SimGenConfig::default());
        let deadline = Deadline::after(Duration::ZERO);
        let report = Sweeper::new(SweepConfig::default()).run_under(&net, &mut gen, &deadline);
        assert!(report.interrupted);
        assert!(report.proven_classes.is_empty(), "nothing may be claimed");
        assert!(report.quarantined.is_empty(), "serial never quarantines");
        assert_eq!(report.stats.sat_calls, 0);
        // The redundant ANDs survive simulation, so they must be
        // reported unresolved rather than silently dropped.
        assert!(report
            .unresolved
            .iter()
            .any(|&(a, b)| ands.contains(&a) && ands.contains(&b)));
        assert_eq!(report.stats.aborted as usize, report.unresolved.len());
        // Only the mandatory random round made it into the history.
        assert_eq!(report.stats.history.len(), 1);
    }

    #[test]
    fn finishing_under_deadline_matches_undeadlined_run() {
        // A generous deadline must not perturb the report.
        let (net, _) = redundant_net();
        let mut g1 = SimGen::new(SimGenConfig::default());
        let plain = Sweeper::new(SweepConfig::default()).run(&net, &mut g1);
        let mut g2 = SimGen::new(SimGenConfig::default());
        let deadline = Deadline::after(Duration::from_secs(3600));
        let timed = Sweeper::new(SweepConfig::default()).run_under(&net, &mut g2, &deadline);
        assert!(!timed.interrupted);
        assert_eq!(timed.proven_classes, plain.proven_classes);
        assert_eq!(timed.unresolved, plain.unresolved);
        assert_eq!(timed.stats.proved_equivalent, plain.stats.proved_equivalent);
        assert_eq!(timed.stats.sat_calls, plain.stats.sat_calls);
    }

    #[test]
    fn refine_groups_splits_by_signature() {
        let mut net = LutNetwork::new();
        let a = net.add_pi("a");
        let x = net.add_lut(vec![a], TruthTable::buf1()).unwrap();
        let y = net.add_lut(vec![a], TruthTable::not1()).unwrap();
        let z = net.add_lut(vec![a], TruthTable::buf1()).unwrap();
        net.add_po(x, "x");
        net.add_po(y, "y");
        net.add_po(z, "z");
        let p = PatternSet::from_vectors(1, &[vec![true]]);
        let sim = simgen_sim::simulate(&net, &p);
        let groups = refine_groups(vec![vec![x, y, z]], &sim);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0], vec![x, z]);
    }

    #[test]
    fn partition_by_signature_matches_refine_groups() {
        let (net, _) = redundant_net();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let p = PatternSet::random(net.num_pis(), 3, &mut rng);
        let sim = simgen_sim::simulate(&net, &p);
        let classes = EquivClasses::initial(&net, &sim);
        let groups = classes.classes().to_vec();
        let flat: Vec<NodeId> = groups.iter().flatten().copied().collect();
        assert_eq!(
            partition_by_signature(&flat, &sim),
            refine_groups(groups, &sim),
            "global partition must equal per-group refinement when \
             groups are signature classes"
        );
    }

    #[test]
    fn flush_delta_partition_matches_full_signature_partition() {
        // The cone-restricted, delta-keyed partition inside
        // `flush_counterexamples` must equal a from-scratch
        // full-signature partition of the same universe after a full
        // (all-node) resimulation — for any job count.
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        let mut net = LutNetwork::new();
        let pis: Vec<NodeId> = (0..4).map(|i| net.add_pi(format!("p{i}"))).collect();
        let mut pool = pis.clone();
        for i in 0..40usize {
            let a = pool[i % pool.len()];
            let b = pool[(i * 7 + 1) % pool.len()];
            let tt = match i % 3 {
                0 => TruthTable::and2(),
                1 => TruthTable::or2(),
                _ => TruthTable::xor2(),
            };
            pool.push(net.add_lut(vec![a, b], tt).unwrap());
        }
        net.add_po(*pool.last().unwrap(), "f");

        // Two patterns leave plenty of multi-member classes.
        let patterns = PatternSet::random(net.num_pis(), 2, &mut rng);
        let sim = simgen_sim::simulate(&net, &patterns);
        let classes = EquivClasses::initial(&net, &sim);
        let mut work = classes.classes().to_vec();
        assert!(!work.is_empty(), "test net must leave collisions");
        // Bench the last member of every class, as a SAT disproof would.
        let mut benched_proto: Vec<(NodeId, NodeId)> = Vec::new();
        for class in &mut work {
            if class.len() > 2 {
                benched_proto.push((class.pop().unwrap(), class[0]));
            }
        }
        // 70 "counterexamples" crossing the 64-bit word boundary.
        let pending_proto: Vec<Vec<bool>> = (0..70usize)
            .map(|i| (0..4).map(|j| (i * 5 + j * 3) % 7 < 3).collect())
            .collect();

        // Reference: full resimulation of every node, then a plain
        // full-signature partition of the universe.
        let block = PatternSet::from_vectors(net.num_pis(), &pending_proto);
        let mut sim_full = sim.clone();
        sim_full.extend_patterns(&net, &block);
        let universe: Vec<NodeId> = work
            .iter()
            .flatten()
            .copied()
            .chain(benched_proto.iter().map(|&(c, _)| c))
            .collect();
        let expected = partition_by_signature(&universe, &sim_full);

        for jobs in [1usize, 2, 4] {
            let mut patterns_j = patterns.clone();
            let mut sim_j = sim.clone();
            let mut pending = pending_proto.clone();
            let mut benched = benched_proto.clone();
            let got = flush_counterexamples(
                &net,
                &mut patterns_j,
                &mut sim_j,
                work.clone(),
                &mut pending,
                &mut benched,
                jobs,
                &mut Observer::disabled(),
            );
            assert_eq!(got, expected, "jobs={jobs}");
            assert!(pending.is_empty() && benched.is_empty());
            assert_eq!(patterns_j.num_patterns(), 72);
            // Universe signatures are fully extended and match the
            // all-node resimulation bit for bit.
            for &n in &universe {
                assert_eq!(sim_j.signature(n), sim_full.signature(n));
            }
        }
    }

    #[test]
    fn flush_batches_counterexamples_into_words() {
        // A sweep that forces many SAT disproofs must still produce
        // sound results with batched resimulation, and the pattern set
        // must contain every counterexample it buffered.
        let mut net = LutNetwork::new();
        let pis: Vec<NodeId> = (0..5).map(|i| net.add_pi(format!("p{i}"))).collect();
        // Many pairwise-distinct threshold-ish functions that collide
        // under a tiny random phase.
        let mut outs = Vec::new();
        for k in 0..8u64 {
            let f = net
                .add_lut(
                    pis.clone(),
                    TruthTable::from_fn(5, move |m| m.count_ones() >= 3 || m == k),
                )
                .unwrap();
            outs.push(f);
            net.add_po(f, format!("f{k}"));
        }
        let cfg = SweepConfig {
            random_rounds: 1,
            random_batch: 1,
            guided_iterations: 0,
            ..SweepConfig::default()
        };
        let mut gen = RandomPatterns::new(1, 0);
        let report = Sweeper::new(cfg).run(&net, &mut gen);
        // No two of the distinct functions may be merged.
        for g in &report.proven_classes {
            for (i, &a) in outs.iter().enumerate() {
                for &b in &outs[i + 1..] {
                    assert!(
                        !(g.contains(&a) && g.contains(&b)),
                        "distinct functions {a} and {b} merged"
                    );
                }
            }
        }
        // Every counterexample the SAT phase produced landed in the
        // accumulated pattern set.
        assert_eq!(
            report.patterns.num_patterns() as u64,
            1 + report.stats.disproved,
        );
    }
}
