//! Statistics collected by the sweeping flow — exactly the metrics
//! the paper's tables and figures report.

use std::time::Duration;

/// One guided-simulation iteration's record (the data behind
/// Figure 7's per-iteration cost/runtime curves).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IterationRecord {
    /// Iteration index (0-based; random rounds count first).
    pub iteration: usize,
    /// Class cost (Equation 5) after this iteration's refinement.
    pub cost: u64,
    /// Vectors produced this iteration.
    pub vectors: usize,
    /// Time spent inside the pattern generator.
    pub gen_time: Duration,
    /// Time spent simulating and refining classes.
    pub sim_time: Duration,
}

/// Cumulative sweep statistics.
#[derive(Clone, Debug, Default)]
pub struct SweepStats {
    /// SAT solver invocations (one per candidate pair).
    pub sat_calls: u64,
    /// Wall time inside the SAT solver.
    pub sat_time: Duration,
    /// Wall time generating patterns (guided strategies).
    pub gen_time: Duration,
    /// Wall time simulating patterns and refining classes.
    pub sim_time: Duration,
    /// Pairs proven equivalent by SAT.
    pub proved_equivalent: u64,
    /// Pairs disproven by a SAT counterexample.
    pub disproved: u64,
    /// Pairs abandoned on conflict budget.
    pub aborted: u64,
    /// Per-iteration history of the simulation phase.
    pub history: Vec<IterationRecord>,
}

impl SweepStats {
    /// Total simulation-phase time (generation + simulation).
    pub fn total_sim_phase(&self) -> Duration {
        self.gen_time + self.sim_time
    }

    /// The cost after the last simulation iteration (`u64::MAX` when
    /// no iteration ran).
    pub fn final_cost(&self) -> u64 {
        self.history.last().map_or(u64::MAX, |r| r.cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates() {
        let mut s = SweepStats::default();
        assert_eq!(s.final_cost(), u64::MAX);
        s.history.push(IterationRecord {
            iteration: 0,
            cost: 10,
            vectors: 64,
            gen_time: Duration::from_millis(1),
            sim_time: Duration::from_millis(2),
        });
        s.history.push(IterationRecord {
            iteration: 1,
            cost: 7,
            vectors: 1,
            gen_time: Duration::from_millis(3),
            sim_time: Duration::from_millis(4),
        });
        s.gen_time = Duration::from_millis(4);
        s.sim_time = Duration::from_millis(6);
        assert_eq!(s.final_cost(), 7);
        assert_eq!(s.total_sim_phase(), Duration::from_millis(10));
    }
}
