//! Statistics collected by the sweeping flow — exactly the metrics
//! the paper's tables and figures report.

use std::time::Duration;

/// One guided-simulation iteration's record (the data behind
/// Figure 7's per-iteration cost/runtime curves).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IterationRecord {
    /// Iteration index (0-based; random rounds count first).
    pub iteration: usize,
    /// Class cost (Equation 5) after this iteration's refinement.
    pub cost: u64,
    /// Vectors produced this iteration.
    pub vectors: usize,
    /// Time spent inside the pattern generator.
    pub gen_time: Duration,
    /// Time spent simulating and refining classes.
    pub sim_time: Duration,
}

/// Cumulative sweep statistics.
#[derive(Clone, Debug, Default)]
pub struct SweepStats {
    /// SAT solver invocations (one per candidate pair).
    pub sat_calls: u64,
    /// Wall time inside the SAT solver.
    pub sat_time: Duration,
    /// Aggregated CDCL solver totals, summed over every prover the
    /// sweep created. Per-pair solver work is deterministic and
    /// addition is commutative, so the totals are `--jobs`-invariant.
    pub solver: simgen_sat::SolverStats,
    /// Wall time generating patterns (guided strategies).
    pub gen_time: Duration,
    /// Wall time simulating patterns and refining classes.
    pub sim_time: Duration,
    /// Wall time of batched counterexample resimulation (a subset of
    /// [`SweepStats::sim_time`]).
    pub resim_time: Duration,
    /// Shape of the compiled simulation kernel (`None` until the
    /// simulation phase compiles one).
    pub kernel: Option<simgen_sim::KernelSummary>,
    /// Simulation-executor work totals (kernel executions, lane words,
    /// scalar pushes), harvested at the end of the sweep.
    pub exec: simgen_sim::ExecStats,
    /// Worker-pool dispatch totals from the compiled kernel. Unlike
    /// [`SweepStats::exec`] these are scheduling diagnostics — how
    /// often simulation actually fanned out and into how many range
    /// tasks — so they vary with `--jobs` and are stripped from
    /// deterministic report forms.
    pub pool: simgen_sim::PoolStats,
    /// Pairs proven equivalent by SAT.
    pub proved_equivalent: u64,
    /// Pairs disproven by a SAT counterexample.
    pub disproved: u64,
    /// Pairs abandoned without an answer: conflict budget exhausted,
    /// deadline expired before the pair was started, or the pair's
    /// prover was quarantined after a panic.
    pub aborted: u64,
    /// Pairs quarantined because certification rejected the engine's
    /// answer: the DRAT checker refused an `Equivalent` proof, or the
    /// scalar replay refused a counterexample. Always zero unless the
    /// sweep ran with [`SweepConfig::certify`](crate::SweepConfig)
    /// and any nonzero value means an engine bug was caught.
    pub certification_failures: u64,
    /// Per-iteration history of the simulation phase.
    pub history: Vec<IterationRecord>,
    /// Parallel-dispatch breakdown (`None` for serial sweeps).
    pub dispatch: Option<DispatchSummary>,
}

/// What one dispatch worker contributed across all proof rounds.
///
/// These rows are diagnostics, not the authoritative totals: a worker
/// whose step panics is respawned with fresh state, losing whatever it
/// had accumulated, and steal counts reflect actual thread
/// interleaving. The deterministic totals live directly on
/// [`DispatchSummary`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerSummary {
    /// Worker index.
    pub worker: usize,
    /// Pair proofs this worker executed.
    pub proofs: u64,
    /// Solver conflicts spent in aborted (budget-limited) attempts.
    pub conflicts: u64,
    /// Pairs whose whole escalation ladder (and fallback) exhausted.
    pub timeouts: u64,
    /// Budget-escalation retries beyond each pair's first attempt.
    pub escalations: u64,
    /// Jobs stolen from other workers' queues (scheduling-dependent).
    pub steals: u64,
    /// Prover panics caught on this worker; each one quarantined its
    /// pair and cost a worker-state respawn.
    pub panics: u64,
}

/// Aggregated parallel-dispatch statistics for one sweep.
///
/// The total fields are accumulated merge-side, in candidate-pair
/// input order, from each job's returned outcome — so they are
/// identical for any `--jobs` value even when injected faults panic
/// workers mid-round (a panicked job deterministically contributes
/// nothing). Summing the [`WorkerSummary`] rows instead would lose
/// whatever a panicking worker had accumulated before its respawn.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DispatchSummary {
    /// Worker count the sweep ran with.
    pub jobs: usize,
    /// Synchronised proof rounds executed.
    pub rounds: u64,
    /// Pairs quarantined because their proof panicked, was skipped by
    /// an expired deadline, or failed certification; all of them end
    /// the sweep unresolved.
    pub quarantined: u64,
    /// Proof jobs that ran to completion (panicked/skipped jobs are
    /// excluded).
    pub proofs: u64,
    /// Solver conflicts spent in aborted (budget-limited) attempts.
    pub conflicts: u64,
    /// Pairs whose whole escalation ladder (and fallback) exhausted.
    pub timeouts: u64,
    /// Budget-escalation retries beyond each pair's first attempt.
    pub escalations: u64,
    /// Proof jobs that panicked; each one quarantined its pair.
    pub panics: u64,
    /// Per-worker breakdown, indexed by worker id (diagnostics only —
    /// lossy under panics, see [`WorkerSummary`]).
    pub workers: Vec<WorkerSummary>,
}

impl DispatchSummary {
    /// Total completed pair proofs (deterministic, merge-side).
    pub fn total_proofs(&self) -> u64 {
        self.proofs
    }

    /// Total escalation retries (deterministic, merge-side).
    pub fn total_escalations(&self) -> u64 {
        self.escalations
    }

    /// Total exhausted pairs (deterministic, merge-side).
    pub fn total_timeouts(&self) -> u64 {
        self.timeouts
    }

    /// Total steals across workers. Steals are scheduling-dependent,
    /// so this is the one total that still sums the worker rows.
    pub fn total_steals(&self) -> u64 {
        self.workers.iter().map(|w| w.steals).sum()
    }

    /// Total panicked proof jobs (deterministic, merge-side).
    pub fn total_panics(&self) -> u64 {
        self.panics
    }
}

impl SweepStats {
    /// Total simulation-phase time (generation + simulation).
    pub fn total_sim_phase(&self) -> Duration {
        self.gen_time + self.sim_time
    }

    /// The cost after the last simulation iteration (`u64::MAX` when
    /// no iteration ran).
    pub fn final_cost(&self) -> u64 {
        self.history.last().map_or(u64::MAX, |r| r.cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates() {
        let mut s = SweepStats::default();
        assert_eq!(s.final_cost(), u64::MAX);
        s.history.push(IterationRecord {
            iteration: 0,
            cost: 10,
            vectors: 64,
            gen_time: Duration::from_millis(1),
            sim_time: Duration::from_millis(2),
        });
        s.history.push(IterationRecord {
            iteration: 1,
            cost: 7,
            vectors: 1,
            gen_time: Duration::from_millis(3),
            sim_time: Duration::from_millis(4),
        });
        s.gen_time = Duration::from_millis(4);
        s.sim_time = Duration::from_millis(6);
        assert_eq!(s.final_cost(), 7);
        assert_eq!(s.total_sim_phase(), Duration::from_millis(10));
    }

    #[test]
    fn dispatch_summary_totals_are_merge_side_not_row_sums() {
        let summary = DispatchSummary {
            jobs: 3,
            rounds: 2,
            quarantined: 4,
            proofs: 23,
            timeouts: 1,
            panics: 3,
            workers: vec![
                // Worker 0 panicked and was respawned, so its row
                // under-reports: rows are diagnostics, the summary's
                // own fields are authoritative.
                WorkerSummary {
                    worker: 0,
                    proofs: 4,
                    panics: 1,
                    steals: 2,
                    ..WorkerSummary::default()
                },
                WorkerSummary {
                    worker: 1,
                    proofs: 8,
                    panics: 2,
                    ..WorkerSummary::default()
                },
                WorkerSummary {
                    worker: 2,
                    proofs: 5,
                    timeouts: 1,
                    ..WorkerSummary::default()
                },
            ],
            ..DispatchSummary::default()
        };
        assert_eq!(summary.total_panics(), 3);
        assert_eq!(summary.total_proofs(), 23);
        assert_eq!(summary.total_steals(), 2);
        assert_eq!(summary.total_timeouts(), 1);
        // Quarantined covers panicked, deadline-skipped and
        // certification-failed pairs, so it is tracked independently
        // of the panic counts.
        assert_eq!(summary.quarantined, 4);
    }

    #[test]
    fn default_summary_is_clean() {
        let summary = DispatchSummary::default();
        assert_eq!(summary.total_panics(), 0);
        assert_eq!(summary.quarantined, 0);
    }
}
