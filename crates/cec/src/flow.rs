//! High-level flows: full two-network CEC and the combined
//! random→guided strategy of the paper's Section 6.5.

use std::time::Instant;

use simgen_core::PatternGenerator;
use simgen_dispatch::{Deadline, Progress};
use simgen_netlist::miter::combine;
use simgen_netlist::{LutNetwork, NetlistError, NodeId};
use simgen_obs::{Counter, Json, Observer, Phase};
use simgen_sim::{EquivClasses, Replayer};

use crate::certify::{certify_counterexample, certify_equivalence, PROOF_BYTE_BUDGET};
use crate::prove::{EquivProver, PairProver, ProveOutcome};
use crate::stats::SweepStats;
use crate::sweep::{spawn_watchdog, SweepConfig};

/// Why a CEC run ended without a definitive answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InconclusiveReason {
    /// The wall-clock deadline expired (or the interrupt flag was
    /// tripped) before every output pair was resolved.
    DeadlineExpired,
    /// Some output proof exhausted its conflict budget (stall-tripped
    /// proofs also land here: the solver cannot tell the two aborts
    /// apart, and the deadline had not passed).
    BudgetExhausted,
    /// The run's estimated memory footprint crossed
    /// [`SweepConfig::mem_budget`] and the
    /// [`MemoryGovernor`](crate::govern::MemoryGovernor) cancelled the
    /// remaining work — a deliberate shed, reported instead of growing
    /// toward an OOM kill. The partial result is as sound as a
    /// deadline expiry's.
    ResourceExhausted,
    /// Certification (`SweepConfig::certify`) rejected an engine
    /// answer somewhere in the run — a DRAT certificate the checker
    /// refused or a counterexample that did not replay. The affected
    /// pairs were quarantined, so the result is still sound, but an
    /// engine produced an answer its own evidence does not support;
    /// the CLI maps this to exit code 3.
    CertificationFailed,
}

/// Verdict of a full CEC run.
///
/// Three-valued on purpose: an anytime run that cannot finish must
/// say so rather than guess. Only [`CecVerdict::Equivalent`] claims
/// equivalence, and it is only produced when *every* output pair was
/// actually proven — partial results degrade to
/// [`CecVerdict::Inconclusive`], never to a false positive.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CecVerdict {
    /// Every PO pair proven equal.
    Equivalent,
    /// A PO pair differs; carries the witness input vector and the
    /// index of the differing output pair.
    NotEquivalent {
        /// Index of the first differing output pair.
        po_index: usize,
        /// Input vector on which the outputs differ.
        witness: Vec<bool>,
    },
    /// One or more PO pairs were left unresolved — by budget, by
    /// deadline, or both. A sound partial result: no falsified pair
    /// was found, and no unproven pair is claimed equal.
    Inconclusive {
        /// Indices of the output pairs left unresolved, ascending.
        unresolved_pairs: Vec<usize>,
        /// What cut the run short.
        reason: InconclusiveReason,
    },
}

/// Report of [`check_equivalence`].
#[derive(Clone, Debug)]
pub struct CecReport {
    /// The verdict.
    pub verdict: CecVerdict,
    /// Sweep statistics (simulation + internal-node SAT calls).
    pub sweep_stats: SweepStats,
    /// SAT calls spent on the output proofs.
    pub output_sat_calls: u64,
    /// Wall time of the output proofs.
    pub output_sat_time: std::time::Duration,
    /// CDCL solver totals of the output-proof prover (the sweep's own
    /// solver totals live in [`SweepStats::solver`]).
    pub output_solver: simgen_sat::SolverStats,
    /// Class cost (Equation 5) after the simulation phase of the sweep.
    pub sweep_cost_after_sim: u64,
    /// Equivalence classes the sweep proved (each seeds the output
    /// proofs with fraig-style merges).
    pub sweep_proven_classes: u64,
    /// Internal candidate pairs the sweep left unresolved.
    pub sweep_unresolved: u64,
    /// Internal pairs quarantined: prover panics and failed
    /// certification checks.
    pub sweep_quarantined: u64,
    /// Simulation patterns the sweep accumulated.
    pub sweep_patterns: u64,
}

/// Checks combinational equivalence of two networks with identical
/// PI/PO interfaces, using sweeping to simplify the final proofs.
///
/// # Errors
///
/// Returns [`NetlistError::Invalid`] if the PI or PO counts differ.
pub fn check_equivalence(
    a: &LutNetwork,
    b: &LutNetwork,
    generator: &mut dyn PatternGenerator,
    config: SweepConfig,
) -> Result<CecReport, NetlistError> {
    check_equivalence_under(a, b, generator, config, &Deadline::never())
}

/// [`check_equivalence`] as an anytime computation: the whole run —
/// sweep, internal proofs, output proofs — shares one [`Deadline`].
/// When it expires, in-flight SAT calls are interrupted and the
/// remaining output pairs are reported in
/// [`CecVerdict::Inconclusive`] instead of being guessed at. A
/// counterexample found before expiry still wins: `NotEquivalent` is
/// definitive no matter how the run ends.
///
/// # Errors
///
/// Returns [`NetlistError::Invalid`] if the PI or PO counts differ.
pub fn check_equivalence_under(
    a: &LutNetwork,
    b: &LutNetwork,
    generator: &mut dyn PatternGenerator,
    config: SweepConfig,
    deadline: &Deadline,
) -> Result<CecReport, NetlistError> {
    check_equivalence_observed(a, b, generator, config, deadline, &mut Observer::disabled())
}

/// [`check_equivalence_under`] with an [`Observer`] attached: phase
/// timings, counters, and trace events from the whole flow — sweep,
/// internal proofs, output proofs — land in `obs`. Passing
/// [`Observer::disabled`] makes this identical to
/// [`check_equivalence_under`] at no measurable cost.
///
/// # Errors
///
/// Returns [`NetlistError::Invalid`] if the PI or PO counts differ.
pub fn check_equivalence_observed(
    a: &LutNetwork,
    b: &LutNetwork,
    generator: &mut dyn PatternGenerator,
    config: SweepConfig,
    deadline: &Deadline,
    obs: &mut Observer,
) -> Result<CecReport, NetlistError> {
    check_equivalence_cached(a, b, generator, config, deadline, obs, None)
}

/// [`check_equivalence_observed`] consulting a content-addressed proof
/// cache: internal sweep pairs *and* the final PO-pair proofs are
/// looked up by the merkle hash of their canonical cones before any
/// SAT work, and fresh verdicts are stored back. The trust policy is
/// the cache module's ([`crate::cache`]): cached counterexamples must
/// replay through the scalar evaluator, cached equivalences under
/// [`SweepConfig::certify`] must pass the independent DRAT checker,
/// and rejected entries are evicted and re-proved live.
///
/// # Errors
///
/// Returns [`NetlistError::Invalid`] if the PI or PO counts differ.
#[allow(clippy::too_many_arguments)]
pub fn check_equivalence_cached(
    a: &LutNetwork,
    b: &LutNetwork,
    generator: &mut dyn PatternGenerator,
    config: SweepConfig,
    deadline: &Deadline,
    obs: &mut Observer,
    cache: Option<&simgen_cache::ProofCache>,
) -> Result<CecReport, NetlistError> {
    check_equivalence_checkpointed(a, b, generator, config, deadline, obs, cache, None)
}

/// [`check_equivalence_cached`] with an optional write-ahead sweep
/// journal ([`crate::journal`]): the internal sweep commits each
/// round barrier to the journal and, when the journal was opened in
/// resume mode, replays journaled rounds instead of re-proving them.
/// The output-pair proofs always run live — they are the cheap tail
/// of the flow once the sweep's merges are seeded (and they hit the
/// pair cache when one is attached).
///
/// # Errors
///
/// Returns [`NetlistError::Invalid`] if the PI or PO counts differ.
#[allow(clippy::too_many_arguments)]
pub fn check_equivalence_checkpointed(
    a: &LutNetwork,
    b: &LutNetwork,
    generator: &mut dyn PatternGenerator,
    config: SweepConfig,
    deadline: &Deadline,
    obs: &mut Observer,
    cache: Option<&simgen_cache::ProofCache>,
    journal: Option<&mut crate::SweepJournal>,
) -> Result<CecReport, NetlistError> {
    if a.num_pos() != b.num_pos() {
        return Err(NetlistError::Invalid(format!(
            "po count mismatch: {} vs {}",
            a.num_pos(),
            b.num_pos()
        )));
    }
    let combined = combine(a, b)?;
    let net = &combined.network;
    // Internal proofs always run through the dispatch engine. Its
    // reports are scheduling-invariant, so every `jobs` value —
    // including the default 1, which runs inline without spawning
    // threads — yields byte-identical classes and proof counts.
    // Internal pairs left unresolved (budget, deadline, quarantine)
    // only cost the output proofs their seeds; they never make the
    // verdict wrong, so the flow keeps going regardless.
    let sweep = crate::ParallelSweeper::new(config)
        .run_checkpointed(net, generator, deadline, obs, cache, journal);
    let mut sweep_cache = cache.map(|c| crate::cache::SweepCache::new(c, config.certify));

    // Final proofs on the PO pairs. Seeding the prover with every
    // equivalence the sweep established (fraig-style merging) is what
    // makes the output proofs tractable: without it, deep arithmetic
    // PO miters re-derive all internal equivalences from scratch.
    let mut prover = PairProver::new(net);
    prover.bind_deadline(deadline);
    if config.certify {
        prover.enable_certification(PROOF_BYTE_BUDGET);
    }
    for class in &sweep.proven_classes {
        let rep = class[0];
        for &member in &class[1..] {
            prover.assert_equal(rep, member);
        }
    }
    let progress = Progress::default();
    let _watchdog = spawn_watchdog(&config, deadline, &progress, &obs.trace);
    let t = Instant::now();
    let output_start = obs.recorder.is_enabled().then(Instant::now);
    let mut cex: Option<(usize, Vec<bool>)> = None;
    let mut unresolved_pairs: Vec<usize> = Vec::new();
    let mut replayer = Replayer::new();
    let mut output_cert_failures: u64 = 0;
    // The output proofs run under the same memory budget as the sweep.
    // The sweep's structures are freed by now, so the governor here
    // watches only the output prover's own gauges; a trip inside the
    // sweep already expired the shared deadline.
    let mut governor = crate::govern::MemoryGovernor::new(config.mem_budget);
    let mut mem_exhausted = sweep.mem_exhausted;
    for (i, (pa, pb)) in a.pos().iter().zip(b.pos()).enumerate() {
        if governor.note(crate::govern::estimate_resident(
            &prover.solver_stats(),
            &Default::default(),
        )) {
            mem_exhausted = true;
            deadline.trip();
            obs.trace.emit(
                "mem_budget_exhausted",
                vec![("estimate_bytes", Json::U64(governor.peak()))],
            );
        }
        if deadline.expired() {
            unresolved_pairs.push(i);
            continue;
        }
        let na = combined.map_a[pa.node.index()];
        let nb = combined.map_b[pb.node.index()];
        // A trusted cache hit answers the PO pair without a SAT call
        // (its trust checks already ran inside `resolve`).
        let cached = sweep_cache
            .as_mut()
            .and_then(|sc| match sc.resolve(net, na, nb, obs) {
                crate::cache::CacheLookup::Hit(outcome) => Some(outcome),
                crate::cache::CacheLookup::Miss => None,
            });
        let from_cache = cached.is_some();
        let outcome = match cached {
            Some(outcome) => outcome,
            None => {
                obs.recorder.add(Counter::OutputProofs, 1);
                prover.prove(na, nb, config.sat_budget)
            }
        };
        progress.tick();
        if obs.trace.is_enabled() {
            let name = match &outcome {
                ProveOutcome::Equivalent => "equivalent",
                ProveOutcome::Counterexample(_) => "disproved",
                ProveOutcome::Undecided { .. } => "undecided",
            };
            obs.trace.emit(
                "output_proof",
                vec![
                    ("po_index", Json::U64(i as u64)),
                    ("verdict", Json::Str(name.to_string())),
                ],
            );
        }
        match outcome {
            ProveOutcome::Equivalent => {
                // Trust-but-verify: an uncertified "equivalent" on an
                // output pair must not contribute to an Equivalent
                // verdict — demote it to unresolved. (Cache hits
                // cleared the same bar inside `resolve`.)
                if config.certify && !from_cache {
                    obs.recorder.add(Counter::CertificatesChecked, 1);
                    if !certify_equivalence(&prover) {
                        output_cert_failures += 1;
                        obs.recorder.add(Counter::CertificatesFailed, 1);
                        obs.trace.emit(
                            "certification_failed",
                            vec![("po_index", Json::U64(i as u64))],
                        );
                        unresolved_pairs.push(i);
                        continue;
                    }
                }
                if !from_cache {
                    if let Some(sc) = sweep_cache.as_mut() {
                        let proof = if config.certify {
                            prover.proof_blob()
                        } else {
                            None
                        };
                        sc.store(net, na, nb, &ProveOutcome::Equivalent, proof, obs);
                    }
                }
            }
            ProveOutcome::Counterexample(witness) => {
                if config.certify && !from_cache {
                    obs.recorder.add(Counter::CexReplays, 1);
                    if !certify_counterexample(net, &mut replayer, &witness, na, nb) {
                        // The witness does not actually distinguish
                        // the outputs: an untrusted inequivalence
                        // claim never terminates the run.
                        output_cert_failures += 1;
                        obs.recorder.add(Counter::CexReplayFailures, 1);
                        obs.trace.emit(
                            "certification_failed",
                            vec![("po_index", Json::U64(i as u64))],
                        );
                        unresolved_pairs.push(i);
                        continue;
                    }
                }
                if !from_cache {
                    if let Some(sc) = sweep_cache.as_mut() {
                        sc.store(
                            net,
                            na,
                            nb,
                            &ProveOutcome::Counterexample(witness.clone()),
                            None,
                            obs,
                        );
                    }
                }
                cex = Some((i, witness));
                break;
            }
            ProveOutcome::Undecided { .. } => {
                unresolved_pairs.push(i);
            }
        }
    }
    if let Some(start) = output_start {
        let elapsed = start.elapsed();
        obs.recorder.add_wall(Phase::OutputProofs, elapsed);
        obs.recorder.add_cpu(Phase::OutputProofs, elapsed);
    }
    let verdict = if let Some((po_index, witness)) = cex {
        CecVerdict::NotEquivalent { po_index, witness }
    } else if unresolved_pairs.is_empty() {
        CecVerdict::Equivalent
    } else {
        CecVerdict::Inconclusive {
            unresolved_pairs,
            // Certification trouble outranks the softer reasons: it
            // means an engine bug was caught, not just a tight budget.
            // A memory-budget shed outranks the deadline it trips
            // through — the cause, not the mechanism, is reported.
            reason: if output_cert_failures > 0 {
                InconclusiveReason::CertificationFailed
            } else if mem_exhausted {
                InconclusiveReason::ResourceExhausted
            } else if deadline.expired() {
                InconclusiveReason::DeadlineExpired
            } else {
                InconclusiveReason::BudgetExhausted
            },
        }
    };
    if matches!(
        verdict,
        CecVerdict::Inconclusive {
            reason: InconclusiveReason::ResourceExhausted,
            ..
        }
    ) {
        obs.recorder.add(Counter::JobsOomCancelled, 1);
    }
    // Output-proof certification failures fold into the run-wide
    // counter the report builders key exit code 3 on.
    let mut sweep_stats = sweep.stats;
    sweep_stats.certification_failures += output_cert_failures;
    Ok(CecReport {
        verdict,
        output_sat_calls: prover.calls(),
        output_sat_time: t.elapsed(),
        output_solver: prover.solver_stats(),
        sweep_cost_after_sim: sweep.cost_after_sim,
        sweep_proven_classes: sweep.proven_classes.len() as u64,
        sweep_unresolved: sweep.unresolved.len() as u64,
        sweep_quarantined: sweep.quarantined.len() as u64,
        sweep_patterns: sweep.patterns.num_patterns() as u64,
        sweep_stats,
    })
}

/// The Section 6.5 strategy: run cheap random simulation until the
/// cost plateaus for `patience` consecutive iterations, then hand over
/// to a guided generator (RevS or SimGen) permanently.
pub struct SwitchOnPlateau {
    random: Box<dyn PatternGenerator>,
    guided: Box<dyn PatternGenerator>,
    patience: usize,
    recent_costs: Vec<u64>,
    switched: bool,
}

impl std::fmt::Debug for SwitchOnPlateau {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SwitchOnPlateau")
            .field("patience", &self.patience)
            .field("switched", &self.switched)
            .finish()
    }
}

impl SwitchOnPlateau {
    /// Creates the combined strategy. `patience` is the number of
    /// consecutive equal-cost iterations that triggers the switch
    /// (the paper uses 3).
    pub fn new(
        random: Box<dyn PatternGenerator>,
        guided: Box<dyn PatternGenerator>,
        patience: usize,
    ) -> Self {
        SwitchOnPlateau {
            random,
            guided,
            patience,
            recent_costs: Vec::new(),
            switched: false,
        }
    }

    /// True once the guided generator has taken over.
    pub fn has_switched(&self) -> bool {
        self.switched
    }
}

impl PatternGenerator for SwitchOnPlateau {
    fn name(&self) -> String {
        format!("{}->{}", self.random.name(), self.guided.name())
    }

    fn generate(&mut self, net: &LutNetwork, classes: &EquivClasses) -> Vec<Vec<bool>> {
        if !self.switched {
            let cost = classes.cost();
            self.recent_costs.push(cost);
            let n = self.recent_costs.len();
            if n >= self.patience
                && self.recent_costs[n - self.patience..]
                    .iter()
                    .all(|&c| c == cost)
            {
                self.switched = true;
            }
        }
        if self.switched {
            self.guided.generate(net, classes)
        } else {
            self.random.generate(net, classes)
        }
    }
}

/// Convenience: collects all LUT node ids of a network (used by
/// examples and benches when assembling custom target sets).
pub fn lut_nodes(net: &LutNetwork) -> Vec<NodeId> {
    net.node_ids().filter(|&n| !net.is_pi(n)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::Sweeper;
    use simgen_core::{RandomPatterns, SimGen, SimGenConfig};
    use simgen_netlist::TruthTable;

    fn adder_pair() -> (LutNetwork, LutNetwork) {
        // sum/carry computed directly vs via De Morgan'd logic.
        let mut n1 = LutNetwork::with_name("direct");
        let a = n1.add_pi("a");
        let b = n1.add_pi("b");
        let cin = n1.add_pi("cin");
        let s = n1
            .add_lut(
                vec![a, b, cin],
                TruthTable::from_fn(3, |m| m.count_ones() % 2 == 1),
            )
            .unwrap();
        let c = n1
            .add_lut(
                vec![a, b, cin],
                TruthTable::from_fn(3, |m| m.count_ones() >= 2),
            )
            .unwrap();
        n1.add_po(s, "sum");
        n1.add_po(c, "cout");

        let mut n2 = LutNetwork::with_name("gates");
        let a = n2.add_pi("a");
        let b = n2.add_pi("b");
        let cin = n2.add_pi("cin");
        let x1 = n2.add_lut(vec![a, b], TruthTable::xor2()).unwrap();
        let s = n2.add_lut(vec![x1, cin], TruthTable::xor2()).unwrap();
        let a1 = n2.add_lut(vec![a, b], TruthTable::and2()).unwrap();
        let a2 = n2.add_lut(vec![x1, cin], TruthTable::and2()).unwrap();
        let c = n2.add_lut(vec![a1, a2], TruthTable::or2()).unwrap();
        n2.add_po(s, "sum");
        n2.add_po(c, "cout");
        (n1, n2)
    }

    #[test]
    fn equivalent_designs_verify() {
        let (n1, n2) = adder_pair();
        let mut gen = SimGen::new(SimGenConfig::default());
        let report = check_equivalence(&n1, &n2, &mut gen, SweepConfig::default()).unwrap();
        assert_eq!(report.verdict, CecVerdict::Equivalent);
        assert!(report.output_sat_calls >= 2);
    }

    #[test]
    fn broken_design_yields_witness() {
        let (n1, mut n2) = adder_pair();
        // Break cout in n2 by adding an extra output-stage inverter.
        let cout_node = n2.pos()[1].node;
        let broken = n2.add_lut(vec![cout_node], TruthTable::not1()).unwrap();
        let sum_node = n2.pos()[0].node;
        n2.clear_pos();
        n2.add_po(sum_node, "sum");
        n2.add_po(broken, "cout");
        let mut gen = SimGen::new(SimGenConfig::default());
        let report = check_equivalence(&n1, &n2, &mut gen, SweepConfig::default()).unwrap();
        match report.verdict {
            CecVerdict::NotEquivalent { po_index, witness } => {
                assert_eq!(po_index, 1);
                let o1 = n1.eval_pos(&witness);
                let o2 = n2.eval_pos(&witness);
                assert_ne!(o1[1], o2[1], "witness distinguishes cout");
            }
            other => panic!("expected inequivalence, got {other:?}"),
        }
    }

    #[test]
    fn certified_cec_still_verifies_and_falsifies() {
        let (n1, n2) = adder_pair();
        let cfg = SweepConfig {
            certify: true,
            ..SweepConfig::default()
        };
        let mut gen = SimGen::new(SimGenConfig::default());
        let report = check_equivalence(&n1, &n2, &mut gen, cfg).unwrap();
        assert_eq!(report.verdict, CecVerdict::Equivalent);
        assert_eq!(report.sweep_stats.certification_failures, 0);
        assert!(
            report.output_solver.proof_clauses > 0,
            "output proofs were logged"
        );

        // And a genuinely broken design still yields its witness —
        // now replay-verified before being reported.
        let (n1, mut n2) = adder_pair();
        let cout_node = n2.pos()[1].node;
        let broken = n2.add_lut(vec![cout_node], TruthTable::not1()).unwrap();
        let sum_node = n2.pos()[0].node;
        n2.clear_pos();
        n2.add_po(sum_node, "sum");
        n2.add_po(broken, "cout");
        let mut gen = SimGen::new(SimGenConfig::default());
        let report = check_equivalence(&n1, &n2, &mut gen, cfg).unwrap();
        match report.verdict {
            CecVerdict::NotEquivalent { po_index, witness } => {
                assert_eq!(po_index, 1);
                assert_ne!(n1.eval_pos(&witness)[1], n2.eval_pos(&witness)[1]);
            }
            other => panic!("expected inequivalence, got {other:?}"),
        }
        assert_eq!(report.sweep_stats.certification_failures, 0);
    }

    #[test]
    fn expired_deadline_is_inconclusive_not_equivalent() {
        let (n1, n2) = adder_pair();
        let mut gen = SimGen::new(SimGenConfig::default());
        let deadline = Deadline::after(std::time::Duration::ZERO);
        let report =
            check_equivalence_under(&n1, &n2, &mut gen, SweepConfig::default(), &deadline).unwrap();
        match report.verdict {
            CecVerdict::Inconclusive {
                unresolved_pairs,
                reason,
            } => {
                // Both output pairs were still open when time ran out.
                assert_eq!(unresolved_pairs, vec![0, 1]);
                assert_eq!(reason, InconclusiveReason::DeadlineExpired);
            }
            other => panic!("expected Inconclusive, got {other:?}"),
        }
        assert_eq!(report.output_sat_calls, 0, "no output proof may start");
    }

    #[test]
    fn zero_budget_is_inconclusive_with_budget_reason() {
        let (n1, n2) = adder_pair();
        let mut gen = SimGen::new(SimGenConfig::default());
        let cfg = SweepConfig {
            sat_budget: Some(0),
            ..SweepConfig::default()
        };
        let report = check_equivalence(&n1, &n2, &mut gen, cfg).unwrap();
        match report.verdict {
            CecVerdict::Inconclusive {
                unresolved_pairs,
                reason,
            } => {
                assert!(!unresolved_pairs.is_empty());
                assert_eq!(reason, InconclusiveReason::BudgetExhausted);
            }
            other => panic!("expected Inconclusive, got {other:?}"),
        }
    }

    #[test]
    fn tiny_mem_budget_sheds_with_resource_exhausted() {
        let (n1, n2) = adder_pair();
        let mut gen = SimGen::new(SimGenConfig::default());
        let cfg = SweepConfig {
            mem_budget: Some(1),
            ..SweepConfig::default()
        };
        let report = check_equivalence(&n1, &n2, &mut gen, cfg).unwrap();
        match report.verdict {
            CecVerdict::Inconclusive {
                unresolved_pairs,
                reason,
            } => {
                assert_eq!(unresolved_pairs, vec![0, 1]);
                assert_eq!(reason, InconclusiveReason::ResourceExhausted);
            }
            other => panic!("expected Inconclusive, got {other:?}"),
        }
        // A generous budget changes nothing about the verdict.
        let cfg = SweepConfig {
            mem_budget: Some(1 << 30),
            ..SweepConfig::default()
        };
        let mut gen = SimGen::new(SimGenConfig::default());
        let report = check_equivalence(&n1, &n2, &mut gen, cfg).unwrap();
        assert_eq!(report.verdict, CecVerdict::Equivalent);
    }

    #[test]
    fn generous_deadline_still_verifies() {
        let (n1, n2) = adder_pair();
        let mut gen = SimGen::new(SimGenConfig::default());
        let deadline = Deadline::after(std::time::Duration::from_secs(3600));
        let report =
            check_equivalence_under(&n1, &n2, &mut gen, SweepConfig::default(), &deadline).unwrap();
        assert_eq!(report.verdict, CecVerdict::Equivalent);
    }

    #[test]
    fn interface_mismatch_rejected() {
        let (n1, _) = adder_pair();
        let mut single = LutNetwork::new();
        let a = single.add_pi("a");
        let b = single.add_pi("b");
        let c = single.add_pi("c");
        let g = single
            .add_lut(vec![a, b, c], TruthTable::const0(3))
            .unwrap();
        single.add_po(g, "only");
        let mut gen = RandomPatterns::new(1, 8);
        assert!(check_equivalence(&n1, &single, &mut gen, SweepConfig::default()).is_err());
    }

    #[test]
    fn plateau_switch_fires_after_patience() {
        let (n1, n2) = adder_pair();
        let combined = combine(&n1, &n2).unwrap();
        let net = combined.network;
        let mut gen = SwitchOnPlateau::new(
            // A "random" generator that always emits the same vector,
            // guaranteeing an immediate plateau.
            Box::new(ConstantGen),
            Box::new(SimGen::new(SimGenConfig::default())),
            3,
        );
        assert_eq!(gen.name(), "const->SimGen");
        let cfg = SweepConfig {
            random_rounds: 1,
            random_batch: 1,
            guided_iterations: 8,
            run_sat: false,
            seed: 3,
            ..SweepConfig::default()
        };
        let _ = Sweeper::new(cfg).run(&net, &mut gen);
        assert!(gen.has_switched(), "plateau must trigger the switch");
    }

    /// Emits one fixed vector every iteration (test helper).
    struct ConstantGen;
    impl PatternGenerator for ConstantGen {
        fn name(&self) -> String {
            "const".into()
        }
        fn generate(&mut self, net: &LutNetwork, _c: &EquivClasses) -> Vec<Vec<bool>> {
            vec![vec![false; net.num_pis()]]
        }
    }

    #[test]
    fn lut_nodes_excludes_pis() {
        let (n1, _) = adder_pair();
        let luts = lut_nodes(&n1);
        assert_eq!(luts.len(), 2);
        assert!(luts.iter().all(|&n| !n1.is_pi(n)));
    }
}
