//! Memory governance for sweeps: per-run accounting of the dominant
//! allocations against a byte budget, so an over-sized job degrades
//! into a `ResourceExhausted` verdict instead of growing until the
//! kernel OOM-kills the whole process.
//!
//! The estimate is not a malloc audit — it folds the three gauges the
//! engines already maintain deterministically: live clause storage
//! ([`SolverStats::clause_db_bytes`]), recorded DRAT proof text
//! ([`SolverStats::proof_bytes`]), and peak simulation lane tables
//! ([`PoolStats::lane_bytes`]). That keeps the trip decision a pure
//! function of solver/simulator progress rather than of allocator
//! internals, at the cost of being an estimate: the budget should be
//! set with headroom, not at the cgroup limit.
//!
//! Like deadlines and stall thresholds, the budget is an *anytime*
//! control, not part of the problem statement: it is excluded from
//! the journal fingerprint and the proof-cache configuration, and a
//! trip interrupts the run through the same shared [`Deadline`] flag
//! a watchdog uses.
//!
//! [`SolverStats::clause_db_bytes`]: simgen_sat::SolverStats::clause_db_bytes
//! [`SolverStats::proof_bytes`]: simgen_sat::SolverStats::proof_bytes
//! [`PoolStats::lane_bytes`]: simgen_sim::PoolStats::lane_bytes
//! [`Deadline`]: simgen_dispatch::Deadline

use simgen_sat::SolverStats;
use simgen_sim::PoolStats;

/// Estimated resident bytes of a sweep's dominant allocations, from
/// the deterministic gauges the engines maintain. Conservative by
/// construction: solver stats folded from already-retired provers
/// stay counted, so the estimate never shrinks below what a single
/// long-lived solver would hold.
pub fn estimate_resident(solver: &SolverStats, pool: &PoolStats) -> u64 {
    solver
        .clause_db_bytes
        .saturating_add(solver.proof_bytes)
        .saturating_add(pool.lane_bytes)
}

/// Tracks a run's estimated footprint against an optional byte
/// budget. [`MemoryGovernor::note`] returns `true` exactly once — at
/// the first check where the estimate crosses the budget — which is
/// the caller's cue to trip the run's deadline and report
/// `ResourceExhausted`.
#[derive(Clone, Debug)]
pub struct MemoryGovernor {
    budget: Option<u64>,
    peak: u64,
    tripped: bool,
}

impl MemoryGovernor {
    /// Creates a governor; `None` disables accounting (every `note`
    /// returns `false`).
    pub fn new(budget: Option<u64>) -> Self {
        MemoryGovernor {
            budget,
            peak: 0,
            tripped: false,
        }
    }

    /// Folds a fresh estimate into the peak. Returns `true` on the
    /// first check where the estimate exceeds the budget; later
    /// checks return `false` so the caller's shutdown path runs once.
    pub fn note(&mut self, estimate: u64) -> bool {
        self.peak = self.peak.max(estimate);
        if self.tripped {
            return false;
        }
        match self.budget {
            Some(budget) if estimate > budget => {
                self.tripped = true;
                true
            }
            _ => false,
        }
    }

    /// True once a check has exceeded the budget.
    pub fn tripped(&self) -> bool {
        self.tripped
    }

    /// Largest estimate seen so far.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// The configured budget, if any.
    pub fn budget(&self) -> Option<u64> {
        self.budget
    }

    /// Bytes left under the budget at the current peak (`None` when
    /// accounting is disabled, zero once tripped).
    pub fn headroom(&self) -> Option<u64> {
        self.budget.map(|b| b.saturating_sub(self.peak))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbudgeted_governor_never_trips() {
        let mut g = MemoryGovernor::new(None);
        assert!(!g.note(u64::MAX));
        assert!(!g.tripped());
        assert_eq!(g.peak(), u64::MAX);
        assert_eq!(g.headroom(), None);
    }

    #[test]
    fn trips_once_at_first_crossing() {
        let mut g = MemoryGovernor::new(Some(1000));
        assert!(!g.note(1000), "at the budget is still within it");
        assert_eq!(g.headroom(), Some(0));
        assert!(g.note(1001), "first crossing reports the trip");
        assert!(!g.note(5000), "later checks stay silent");
        assert!(g.tripped());
        assert_eq!(g.peak(), 5000);
        assert_eq!(g.headroom(), Some(0));
    }

    #[test]
    fn estimate_folds_the_three_gauges_saturating() {
        let solver = SolverStats {
            clause_db_bytes: 100,
            proof_bytes: 10,
            ..SolverStats::default()
        };
        let pool = PoolStats {
            lane_bytes: 1,
            ..PoolStats::default()
        };
        assert_eq!(estimate_resident(&solver, &pool), 111);
        let huge = SolverStats {
            clause_db_bytes: u64::MAX,
            proof_bytes: u64::MAX,
            ..SolverStats::default()
        };
        assert_eq!(estimate_resident(&huge, &pool), u64::MAX);
    }
}
