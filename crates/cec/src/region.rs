//! Fanin-region partitioning and the serial engine-selection ladder.
//!
//! A *region* is a connected component of the netlist under fanin
//! edges: two nodes share a region iff their cones overlap somewhere.
//! Pairs in one region share cone structure, so they share one
//! long-lived assumption-scoped [`PairProver`] — the shared Tseitin
//! encoding is paid once and learnt clauses carry across the region's
//! miters. Pairs in different regions share nothing, which is what
//! lets the parallel sweeper dispatch whole regions as independent
//! jobs without breaking the jobs-invariance contract.
//!
//! `SerialEngine` is the serial sweeper's per-pair engine ladder:
//! optional BDD primary (under
//! [`EngineMode::BddFirst`](simgen_dispatch::EngineMode::BddFirst)), then the
//! SAT engine against either the pair's region solver (incremental
//! mode) or a cold per-pair solver (`--no-incremental`).

use std::collections::BTreeMap;
use std::collections::HashSet;
use std::time::Duration;

use simgen_dispatch::{Deadline, EnginePolicy};
use simgen_netlist::{LutNetwork, NodeId};
use simgen_sat::{ScopeMetrics, SolverStats};

use crate::prove::{BddProver, EquivProver, PairProver, ProveOutcome};

/// Default BDD node limit for the [`EngineMode::BddFirst`] primary
/// when the budget schedule does not supply one.
///
/// [`EngineMode::BddFirst`]: simgen_dispatch::EngineMode::BddFirst
pub(crate) const DEFAULT_BDD_FIRST_LIMIT: usize = 10_000;

/// Floor for the rebuild-bloat baseline: a region whose post-seeding
/// footprint is tiny would otherwise trip the multiple on its very
/// first learnt clauses, churning solvers where reuse is cheapest.
pub(crate) const REBUILD_BASELINE_FLOOR: u64 = 1024;

/// Union-find over fanin edges, partitioning the netlist into
/// cone-connected regions. Construction is a single pass over all
/// edges; lookups use path compression.
#[derive(Clone, Debug)]
pub struct RegionMap {
    parent: Vec<u32>,
}

impl RegionMap {
    /// Partitions `net` by uniting every node with its fanins.
    pub fn new(net: &LutNetwork) -> RegionMap {
        let mut map = RegionMap {
            parent: (0..net.len() as u32).collect(),
        };
        for node in net.node_ids() {
            for &fanin in net.fanins(node) {
                map.union(node.index(), fanin.index());
            }
        }
        map
    }

    fn find(&mut self, mut i: usize) -> usize {
        while self.parent[i] as usize != i {
            let grand = self.parent[self.parent[i] as usize];
            self.parent[i] = grand;
            i = grand as usize;
        }
        i
    }

    fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            // Smaller root wins: keys are stable, order-independent
            // names (the minimum node index reachable by roots).
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo as u32;
        }
    }

    /// The region key of a candidate pair: the smaller of the two
    /// nodes' component roots. Deterministic — a pure function of the
    /// netlist — so serial and parallel sweeps group pairs
    /// identically.
    pub fn key(&mut self, a: NodeId, b: NodeId) -> usize {
        let ra = self.find(a.index());
        let rb = self.find(b.index());
        ra.min(rb)
    }
}

/// The union of both nodes' fanin cones (including the roots), used
/// to filter which proven seed equalities a cold per-pair solver
/// replays.
pub(crate) fn cone_union(net: &LutNetwork, a: NodeId, b: NodeId) -> HashSet<NodeId> {
    let mut cone = HashSet::new();
    let mut stack = vec![a, b];
    while let Some(n) = stack.pop() {
        if cone.insert(n) {
            stack.extend_from_slice(net.fanins(n));
        }
    }
    cone
}

/// Which engine answered the most recent query — certification and
/// proof-blob extraction must go back to the same solver.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum LastEngine {
    None,
    Bdd,
    Region(usize),
    Cold,
}

/// The serial sweeper's SAT engine: one [`PairProver`] per fanin
/// region (incremental mode) or a cold prover per pair, with an
/// optional BDD primary in front. Implements [`EquivProver`] so the
/// sweep loop is engine-agnostic.
#[derive(Debug)]
pub(crate) struct SerialEngine<'n> {
    net: &'n LutNetwork,
    policy: EnginePolicy,
    certify: bool,
    deadline: Deadline,
    regions: RegionMap,
    /// Region root → that region's long-lived prover (incremental
    /// mode only). BTreeMap for deterministic summation order.
    farm: BTreeMap<usize, PairProver<'n>>,
    /// Region root → clause-database bytes right after creation and
    /// seeding: the denominator of the rebuild-bloat ratio. A region
    /// whose live footprint exceeds this baseline (floored at
    /// [`REBUILD_BASELINE_FLOOR`]) times
    /// [`EnginePolicy::rebuild_bloat`] is retired before its next
    /// query and rebuilt from seeds — trading warm clauses for a
    /// bounded clause database.
    baselines: BTreeMap<usize, u64>,
    /// Bloated region solvers retired and rebuilt so far.
    rebuilds: u64,
    /// The current pair's prover in cold mode; replaced per query,
    /// with its totals folded into `done_*` first.
    cold: Option<PairProver<'n>>,
    /// Every proven equality, with its region key, in assertion
    /// order: replayed into provers created after the fact (cache
    /// hits can seed a region before its first live proof).
    seeds: Vec<(NodeId, NodeId, usize)>,
    /// BDD primary under `EngineMode::BddFirst`.
    bdd: Option<BddProver<'n>>,
    last: LastEngine,
    done_calls: u64,
    done_time: Duration,
    done_solver: SolverStats,
    done_metrics: ScopeMetrics,
}

impl<'n> SerialEngine<'n> {
    pub(crate) fn new(
        net: &'n LutNetwork,
        policy: EnginePolicy,
        certify: bool,
        bdd_node_limit: Option<usize>,
        deadline: &Deadline,
    ) -> Self {
        let bdd = policy.bdd_primary(certify).then(|| {
            BddProver::new(
                net,
                bdd_node_limit
                    .filter(|&n| n > 0)
                    .unwrap_or(DEFAULT_BDD_FIRST_LIMIT),
            )
        });
        SerialEngine {
            net,
            policy,
            certify,
            deadline: deadline.clone(),
            regions: RegionMap::new(net),
            farm: BTreeMap::new(),
            baselines: BTreeMap::new(),
            rebuilds: 0,
            cold: None,
            seeds: Vec::new(),
            bdd,
            last: LastEngine::None,
            done_calls: 0,
            done_time: Duration::ZERO,
            done_solver: SolverStats::default(),
            done_metrics: ScopeMetrics::default(),
        }
    }

    fn fresh_prover(&self) -> PairProver<'n> {
        let mut prover = PairProver::new(self.net);
        prover.bind_deadline(&self.deadline);
        if self.certify {
            prover.enable_certification(crate::certify::PROOF_BYTE_BUDGET);
        }
        prover
    }

    /// The region prover for `key`, created (and seeded with the
    /// region's already-proven equalities) on first use.
    fn region_prover(&mut self, key: usize) -> &mut PairProver<'n> {
        if !self.farm.contains_key(&key) {
            let mut prover = self.fresh_prover();
            for &(x, y, k) in &self.seeds {
                if k == key {
                    prover.assert_equal(x, y);
                }
            }
            self.baselines
                .insert(key, prover.solver_stats().clause_db_bytes);
            self.farm.insert(key, prover);
        }
        self.farm.get_mut(&key).expect("just inserted")
    }

    /// Retires region `key`'s solver if its live clause database has
    /// bloated past the policy's multiple of the post-seeding
    /// baseline: the prover's cumulative stats fold into the `done_*`
    /// accumulators (so reports are unchanged) and the next query
    /// rebuilds it from the region's seeds. Runs *between* queries —
    /// never while the last answer's scope might still need
    /// certificate extraction.
    fn maybe_rebuild(&mut self, key: usize) {
        let bloat = u64::from(self.policy.rebuild_bloat);
        if bloat == 0 {
            return;
        }
        let Some(prover) = self.farm.get(&key) else {
            return;
        };
        let baseline = self
            .baselines
            .get(&key)
            .copied()
            .unwrap_or(0)
            .max(REBUILD_BASELINE_FLOOR);
        if prover.solver_stats().clause_db_bytes <= baseline.saturating_mul(bloat) {
            return;
        }
        let old = self.farm.remove(&key).expect("presence checked above");
        self.done_calls += old.calls();
        self.done_time += old.time();
        self.done_solver += old.solver_stats();
        self.done_metrics += old.metrics();
        self.baselines.remove(&key);
        self.rebuilds += 1;
    }

    /// The prover that answered the last query, if it was a SAT one.
    fn last_sat_prover(&self) -> Option<&PairProver<'n>> {
        match self.last {
            LastEngine::Region(key) => self.farm.get(&key),
            LastEngine::Cold => self.cold.as_ref(),
            LastEngine::None | LastEngine::Bdd => None,
        }
    }
}

impl EquivProver for SerialEngine<'_> {
    fn prove(&mut self, a: NodeId, b: NodeId, budget: Option<u64>) -> ProveOutcome {
        if let Some(bdd) = self.bdd.as_mut() {
            let outcome = bdd.prove(a, b, budget);
            if !outcome.is_undecided() {
                self.last = LastEngine::Bdd;
                return outcome;
            }
            // Node limit tripped: fall through to the SAT ladder.
        }
        if self.policy.incremental {
            let key = self.regions.key(a, b);
            self.maybe_rebuild(key);
            self.last = LastEngine::Region(key);
            self.region_prover(key).prove(a, b, budget)
        } else {
            if let Some(old) = self.cold.take() {
                self.done_calls += old.calls();
                self.done_time += old.time();
                self.done_solver += old.solver_stats();
                self.done_metrics += old.metrics();
            }
            let mut prover = self.fresh_prover();
            let cone = cone_union(self.net, a, b);
            for &(x, y, _) in &self.seeds {
                if cone.contains(&x) && cone.contains(&y) {
                    prover.assert_equal(x, y);
                }
            }
            let outcome = prover.prove(a, b, budget);
            self.cold = Some(prover);
            self.last = LastEngine::Cold;
            outcome
        }
    }

    fn assert_equal(&mut self, a: NodeId, b: NodeId) {
        let key = self.regions.key(a, b);
        self.seeds.push((a, b, key));
        if self.policy.incremental {
            // Feed existing region provers directly; ones created
            // later replay from `seeds`.
            if let Some(prover) = self.farm.get_mut(&key) {
                prover.assert_equal(a, b);
            }
        }
    }

    fn calls(&self) -> u64 {
        let mut total = self.done_calls;
        total += self.farm.values().map(PairProver::calls).sum::<u64>();
        if let Some(cold) = &self.cold {
            total += cold.calls();
        }
        if let Some(bdd) = &self.bdd {
            total += bdd.calls();
        }
        total
    }

    fn time(&self) -> Duration {
        let mut total = self.done_time;
        total += self.farm.values().map(PairProver::time).sum::<Duration>();
        if let Some(cold) = &self.cold {
            total += cold.time();
        }
        if let Some(bdd) = &self.bdd {
            total += bdd.time();
        }
        total
    }

    fn solver_stats(&self) -> Option<SolverStats> {
        let mut total = self.done_solver;
        for prover in self.farm.values() {
            total += prover.solver_stats();
        }
        if let Some(cold) = &self.cold {
            total += cold.solver_stats();
        }
        Some(total)
    }

    /// Summed across every SAT solver this engine has owned.
    fn metrics(&self) -> ScopeMetrics {
        let mut total = self.done_metrics;
        for prover in self.farm.values() {
            total += prover.metrics();
        }
        if let Some(cold) = &self.cold {
            total += cold.metrics();
        }
        total
    }

    fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    fn certify_last(&self) -> bool {
        match self.last_sat_prover() {
            Some(prover) => crate::certify::certify_equivalence(prover),
            // BDD answers carry no certificate; fail closed.
            None => false,
        }
    }

    fn proof_blob(&self) -> Option<Vec<u8>> {
        self.last_sat_prover()?
            .certificate()
            .map(|c| simgen_cache::serialize_certificate(&c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simgen_netlist::TruthTable;

    /// Two disconnected islands: (a & b vs b & a) and (c | d vs d | c).
    fn two_island_net() -> (LutNetwork, [NodeId; 4]) {
        let mut net = LutNetwork::new();
        let a = net.add_pi("a");
        let b = net.add_pi("b");
        let c = net.add_pi("c");
        let d = net.add_pi("d");
        let x1 = net.add_lut(vec![a, b], TruthTable::and2()).unwrap();
        let x2 = net.add_lut(vec![b, a], TruthTable::and2()).unwrap();
        let y1 = net.add_lut(vec![c, d], TruthTable::or2()).unwrap();
        let y2 = net.add_lut(vec![d, c], TruthTable::or2()).unwrap();
        net.add_po(x1, "x1");
        net.add_po(x2, "x2");
        net.add_po(y1, "y1");
        net.add_po(y2, "y2");
        (net, [x1, x2, y1, y2])
    }

    #[test]
    fn disconnected_cones_land_in_distinct_regions() {
        let (net, [x1, x2, y1, y2]) = two_island_net();
        let mut map = RegionMap::new(&net);
        assert_eq!(map.key(x1, x2), map.key(x1, x1));
        assert_eq!(map.key(y1, y2), map.key(y2, y2));
        assert_ne!(map.key(x1, x2), map.key(y1, y2), "islands are separate");
    }

    #[test]
    fn region_keys_are_order_independent() {
        let (net, [x1, x2, ..]) = two_island_net();
        let mut fwd = RegionMap::new(&net);
        let mut rev = RegionMap::new(&net);
        let k1 = fwd.key(x1, x2);
        let k2 = rev.key(x2, x1);
        assert_eq!(k1, k2);
    }

    #[test]
    fn serial_engine_keeps_one_prover_per_region() {
        let (net, [x1, x2, y1, y2]) = two_island_net();
        let deadline = Deadline::never();
        let mut engine = SerialEngine::new(&net, EnginePolicy::default(), false, None, &deadline);
        assert_eq!(engine.prove(x1, x2, None), ProveOutcome::Equivalent);
        assert_eq!(engine.prove(y1, y2, None), ProveOutcome::Equivalent);
        assert_eq!(engine.farm.len(), 2, "one solver per island");
        assert_eq!(engine.calls(), 2);
        assert_eq!(engine.metrics().scopes_opened, 2);
        // Same-region re-query is a warm solve; cross-region was not.
        assert_eq!(engine.prove(x1, x2, None), ProveOutcome::Equivalent);
        assert_eq!(engine.metrics().warm_solves, 1);
    }

    #[test]
    fn bloat_policy_rebuilds_the_region_solver() {
        // Two xor trees over the same six inputs: the shared-cone
        // encoding alone exceeds the floored baseline, so bloat=1
        // forces a rebuild before the second query.
        let mut net = LutNetwork::new();
        let pis: Vec<NodeId> = (0..6).map(|i| net.add_pi(format!("p{i}"))).collect();
        let mut l = pis[0];
        for &p in &pis[1..] {
            l = net.add_lut(vec![l, p], TruthTable::xor2()).unwrap();
        }
        let mut r = pis[5];
        for &p in pis[..5].iter().rev() {
            r = net.add_lut(vec![r, p], TruthTable::xor2()).unwrap();
        }
        net.add_po(l, "l");
        net.add_po(r, "r");
        let deadline = Deadline::never();
        let policy = EnginePolicy {
            rebuild_bloat: 1,
            ..EnginePolicy::default()
        };
        let mut engine = SerialEngine::new(&net, policy, false, None, &deadline);
        assert_eq!(engine.prove(l, r, None), ProveOutcome::Equivalent);
        assert_eq!(engine.rebuilds(), 0, "first query builds, never rebuilds");
        let calls_before = engine.calls();
        assert_eq!(engine.prove(l, r, None), ProveOutcome::Equivalent);
        assert_eq!(engine.rebuilds(), 1, "bloated solver retired before reuse");
        assert_eq!(
            engine.metrics().warm_solves,
            0,
            "rebuilt solver starts cold"
        );
        assert_eq!(
            engine.calls(),
            calls_before + 1,
            "retired solver's totals keep counting"
        );
        // With the policy off, the same workload reuses warm clauses.
        let mut stable = SerialEngine::new(&net, EnginePolicy::default(), false, None, &deadline);
        stable.prove(l, r, None);
        stable.prove(l, r, None);
        assert_eq!(stable.rebuilds(), 0);
        assert_eq!(stable.metrics().warm_solves, 1);
    }

    #[test]
    fn cold_mode_never_reuses_a_solver() {
        let (net, [x1, x2, ..]) = two_island_net();
        let deadline = Deadline::never();
        let policy = EnginePolicy {
            incremental: false,
            ..EnginePolicy::default()
        };
        let mut engine = SerialEngine::new(&net, policy, false, None, &deadline);
        assert_eq!(engine.prove(x1, x2, None), ProveOutcome::Equivalent);
        assert_eq!(engine.prove(x1, x2, None), ProveOutcome::Equivalent);
        assert!(engine.farm.is_empty());
        assert_eq!(engine.calls(), 2);
        assert_eq!(engine.metrics().warm_solves, 0, "every pair starts cold");
        assert_eq!(engine.metrics().clauses_reused, 0);
    }
}
