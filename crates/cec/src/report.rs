//! Builders that turn a finished sweep or CEC run plus its
//! [`Observer`] into the versioned [`RunReport`] document
//! (`simgen-run-report/3`).
//!
//! The report shape is defined in `simgen-obs` (`docs/observability.md`
//! spells it out field by field); this module owns the mapping from
//! the engine's native statistics ([`SweepStats`], [`CecReport`],
//! dispatch summaries, kernel counters) into that shape. Everything
//! the builders copy out of `stats` is `--jobs`-invariant, so the
//! deterministic form of the produced report is byte-identical for
//! any worker count.

use simgen_netlist::LutNetwork;
use simgen_obs::report::{
    Design, DispatchSection, IterationRow, Outcome, PhaseTiming, RunReport, SatSection, SimSection,
    SweepSection, TraceSummary, WorkerRow,
};
use simgen_obs::{Counter, Json, Observer, Phase};

use crate::flow::{CecReport, CecVerdict, InconclusiveReason};
use crate::stats::SweepStats;
use crate::sweep::{ProofEngine, SweepConfig, SweepReport};

/// Run identity shared by both builders: what command ran, with what
/// arguments, on which design.
#[derive(Clone, Debug, Default)]
pub struct RunMeta {
    /// Subcommand name (`"sweep"` or `"cec"`).
    pub command: String,
    /// Raw argument vector, echoed into the report (stripped from the
    /// deterministic form — it contains `--jobs`).
    pub argv: Vec<String>,
    /// Design identity and size.
    pub design: Design,
}

/// Extracts [`Design`] identity from a network. `path` is the
/// command-line path (empty for in-memory designs).
pub fn design_info(net: &LutNetwork, name: &str, path: &str) -> Design {
    Design {
        name: name.to_string(),
        path: path.to_string(),
        pis: net.num_pis() as u64,
        nodes: (net.len() - net.num_pis()) as u64,
        pos: net.num_pos() as u64,
    }
}

/// Serializes a [`SweepConfig`] into report `config` entries. Only
/// `stall` is a duration, and it is configuration, not measurement, so
/// it is written as a plain millisecond number (no `_ms` suffix: the
/// suffix is reserved for measured times the deterministic form must
/// strip).
pub fn sweep_config_json(cfg: &SweepConfig) -> Vec<(String, Json)> {
    let mut entries = vec![
        (
            "random_rounds".to_string(),
            Json::U64(cfg.random_rounds as u64),
        ),
        (
            "random_batch".to_string(),
            Json::U64(cfg.random_batch as u64),
        ),
        (
            "guided_iterations".to_string(),
            Json::U64(cfg.guided_iterations as u64),
        ),
        (
            "sat_budget".to_string(),
            cfg.sat_budget.map_or(Json::Null, Json::U64),
        ),
        ("run_sat".to_string(), Json::Bool(cfg.run_sat)),
        (
            "proof".to_string(),
            Json::Str(
                match cfg.proof {
                    ProofEngine::Sat => "sat",
                    ProofEngine::Bdd { .. } => "bdd",
                }
                .to_string(),
            ),
        ),
        ("seed".to_string(), Json::U64(cfg.seed)),
        ("jobs".to_string(), Json::U64(cfg.jobs as u64)),
    ];
    match &cfg.budget_schedule {
        None => entries.push(("budget_schedule".to_string(), Json::Null)),
        Some(schedule) => {
            let mut obj = Json::obj();
            obj.push("initial", Json::U64(schedule.initial));
            obj.push("multiplier", Json::U64(schedule.multiplier));
            obj.push("attempts", Json::U64(u64::from(schedule.attempts)));
            obj.push("bdd_node_limit", Json::U64(schedule.bdd_node_limit as u64));
            entries.push(("budget_schedule".to_string(), obj));
        }
    }
    entries.push((
        "stall".to_string(),
        cfg.stall
            .map_or(Json::Null, |d| Json::F64(d.as_secs_f64() * 1e3)),
    ));
    entries.push(("certify".to_string(), Json::Bool(cfg.certify)));
    entries.push((
        "engine_mode".to_string(),
        Json::Str(cfg.engine.mode.name().to_string()),
    ));
    entries.push((
        "incremental".to_string(),
        Json::Bool(cfg.engine.incremental),
    ));
    entries.push((
        "rebuild_bloat".to_string(),
        Json::U64(u64::from(cfg.engine.rebuild_bloat)),
    ));
    entries.push((
        "mem_budget".to_string(),
        cfg.mem_budget.map_or(Json::Null, Json::U64),
    ));
    entries
}

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn phase_rows(obs: &Observer) -> Vec<PhaseTiming> {
    Phase::ALL
        .iter()
        .filter_map(|&phase| {
            let wall = obs.recorder.wall(phase);
            let cpu = obs.recorder.cpu(phase);
            (!wall.is_zero() || !cpu.is_zero()).then(|| PhaseTiming {
                name: phase.name().to_string(),
                wall_ms: ms(wall),
                cpu_ms: ms(cpu),
            })
        })
        .collect()
}

fn counter_rows(obs: &Observer) -> Vec<(&'static str, u64)> {
    Counter::ALL
        .iter()
        .map(|&c| (c.name(), obs.recorder.get(c)))
        .collect()
}

fn iteration_rows(stats: &SweepStats) -> Vec<IterationRow> {
    stats
        .history
        .iter()
        .map(|r| IterationRow {
            iteration: r.iteration as u64,
            cost: r.cost,
            vectors: r.vectors as u64,
            gen_ms: ms(r.gen_time),
            sim_ms: ms(r.sim_time),
        })
        .collect()
}

fn sat_section(stats: &SweepStats, extra: Option<&simgen_sat::SolverStats>) -> SatSection {
    let mut solver = stats.solver;
    if let Some(extra) = extra {
        solver += *extra;
    }
    SatSection {
        calls: stats.sat_calls,
        solves: solver.solves,
        decisions: solver.decisions,
        propagations: solver.propagations,
        conflicts: solver.conflicts,
        restarts: solver.restarts,
        learned: solver.learned,
        removed: solver.removed,
        proof_clauses: solver.proof_clauses,
        proof_bytes: solver.proof_bytes,
        clause_db_bytes: solver.clause_db_bytes,
        wall_ms: ms(stats.sat_time),
    }
}

fn dispatch_section(stats: &SweepStats) -> Option<DispatchSection> {
    stats.dispatch.as_ref().map(|d| DispatchSection {
        jobs: d.jobs as u64,
        rounds: d.rounds,
        quarantined: d.quarantined,
        proofs: d.proofs,
        conflicts: d.conflicts,
        timeouts: d.timeouts,
        escalations: d.escalations,
        panics: d.panics,
        workers: d
            .workers
            .iter()
            .map(|w| WorkerRow {
                worker: w.worker as u64,
                proofs: w.proofs,
                conflicts: w.conflicts,
                timeouts: w.timeouts,
                escalations: w.escalations,
                steals: w.steals,
                panics: w.panics,
            })
            .collect(),
    })
}

fn sim_section(stats: &SweepStats) -> Option<SimSection> {
    stats.kernel.as_ref().map(|kernel| SimSection {
        kernel_nodes: kernel.nodes,
        kernel_fused: kernel.fused,
        kernel_tape_nodes: kernel.tape_nodes,
        kernel_tape_ops: kernel.tape_ops,
        exec_calls: stats.exec.exec_calls,
        exec_words: stats.exec.exec_words,
        exec_patterns: stats.exec.exec_patterns,
        cone_exec_calls: stats.exec.cone_exec_calls,
        scalar_pushes: stats.exec.scalar_pushes,
        simd_width_bits: simgen_sim::active_simd_level().width_bits() as u64,
        pool_dispatches: stats.pool.dispatches,
        pool_tasks: stats.pool.tasks,
        pool_lane_bytes: stats.pool.lane_bytes,
    })
}

fn trace_summary(obs: &Observer) -> Option<TraceSummary> {
    obs.trace.is_enabled().then(|| TraceSummary {
        emitted: obs.trace.emitted(),
        dropped: obs.trace.dropped(),
    })
}

/// Builds the run report for a standalone sweep.
pub fn sweep_run_report(
    meta: RunMeta,
    config: &SweepConfig,
    report: &SweepReport,
    obs: &Observer,
) -> RunReport {
    let stats = &report.stats;
    let mut outcome = if report.interrupted {
        Outcome {
            status: "interrupted".to_string(),
            exit_code: 2,
            interrupted: true,
            detail: vec![(
                "unresolved".to_string(),
                Json::U64(report.unresolved.len() as u64),
            )],
        }
    } else {
        Outcome {
            status: "complete".to_string(),
            exit_code: 0,
            interrupted: false,
            detail: vec![],
        }
    };
    // A failed certification outranks every other exit: it means an
    // engine produced an answer its own evidence does not support.
    if stats.certification_failures > 0 {
        outcome.exit_code = 3;
        outcome.detail.push((
            "certification_failures".to_string(),
            Json::U64(stats.certification_failures),
        ));
    }
    RunReport {
        command: meta.command,
        argv: meta.argv,
        design: meta.design,
        config: sweep_config_json(config),
        outcome,
        phases: phase_rows(obs),
        iterations: iteration_rows(stats),
        sweep: Some(SweepSection {
            cost_after_sim: report.cost_after_sim,
            proved_equivalent: stats.proved_equivalent,
            disproved: stats.disproved,
            aborted: stats.aborted,
            unresolved: report.unresolved.len() as u64,
            quarantined: report.quarantined.len() as u64,
            proven_classes: report.proven_classes.len() as u64,
            patterns: report.patterns.num_patterns() as u64,
        }),
        sat: Some(sat_section(stats, None)),
        dispatch: dispatch_section(stats),
        sim: sim_section(stats),
        counters: counter_rows(obs),
        trace: trace_summary(obs),
    }
}

/// Builds the run report for a full two-network CEC run. The `sat`
/// section sums the sweep's internal-proof solver totals with the
/// output-proof prover's.
pub fn cec_run_report(
    meta: RunMeta,
    config: &SweepConfig,
    report: &CecReport,
    obs: &Observer,
) -> RunReport {
    let stats = &report.sweep_stats;
    let mut outcome = match &report.verdict {
        CecVerdict::Equivalent => Outcome {
            status: "equivalent".to_string(),
            exit_code: 0,
            interrupted: false,
            detail: vec![],
        },
        CecVerdict::NotEquivalent { po_index, .. } => Outcome {
            status: "not_equivalent".to_string(),
            exit_code: 1,
            interrupted: false,
            detail: vec![("po_index".to_string(), Json::U64(*po_index as u64))],
        },
        CecVerdict::Inconclusive {
            unresolved_pairs,
            reason,
        } => Outcome {
            status: "inconclusive".to_string(),
            exit_code: 2,
            interrupted: matches!(
                reason,
                InconclusiveReason::DeadlineExpired | InconclusiveReason::ResourceExhausted
            ),
            detail: vec![
                (
                    "reason".to_string(),
                    Json::Str(
                        match reason {
                            InconclusiveReason::DeadlineExpired => "deadline_expired",
                            InconclusiveReason::BudgetExhausted => "budget_exhausted",
                            InconclusiveReason::CertificationFailed => "certification_failed",
                            InconclusiveReason::ResourceExhausted => "resource_exhausted",
                        }
                        .to_string(),
                    ),
                ),
                (
                    "unresolved".to_string(),
                    Json::U64(unresolved_pairs.len() as u64),
                ),
            ],
        },
    };
    // Certification failures force exit 3 — except for NotEquivalent,
    // whose witness was itself replay-certified and is definitive.
    if stats.certification_failures > 0
        && !matches!(report.verdict, CecVerdict::NotEquivalent { .. })
    {
        outcome.exit_code = 3;
        outcome.detail.push((
            "certification_failures".to_string(),
            Json::U64(stats.certification_failures),
        ));
    }
    let mut sat = sat_section(stats, Some(&report.output_solver));
    sat.calls += report.output_sat_calls;
    sat.wall_ms += ms(report.output_sat_time);
    RunReport {
        command: meta.command,
        argv: meta.argv,
        design: meta.design,
        config: sweep_config_json(config),
        outcome,
        phases: phase_rows(obs),
        iterations: iteration_rows(stats),
        sweep: Some(SweepSection {
            cost_after_sim: report.sweep_cost_after_sim,
            proved_equivalent: stats.proved_equivalent,
            disproved: stats.disproved,
            aborted: stats.aborted,
            unresolved: report.sweep_unresolved,
            quarantined: report.sweep_quarantined,
            proven_classes: report.sweep_proven_classes,
            patterns: report.sweep_patterns,
        }),
        sat: Some(sat),
        dispatch: dispatch_section(stats),
        sim: sim_section(stats),
        counters: counter_rows(obs),
        trace: trace_summary(obs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::check_equivalence_observed;
    use crate::sweep::Sweeper;
    use crate::ParallelSweeper;
    use simgen_core::{SimGen, SimGenConfig};
    use simgen_dispatch::Deadline;
    use simgen_netlist::TruthTable;

    fn tiny_net() -> LutNetwork {
        let mut net = LutNetwork::with_name("tiny");
        let a = net.add_pi("a");
        let b = net.add_pi("b");
        let x = net.add_lut(vec![a, b], TruthTable::and2()).unwrap();
        let y = net.add_lut(vec![b, a], TruthTable::and2()).unwrap();
        net.add_po(x, "x");
        net.add_po(y, "y");
        net
    }

    fn meta_for(net: &LutNetwork, command: &str) -> RunMeta {
        RunMeta {
            command: command.to_string(),
            argv: vec![command.to_string(), "tiny.blif".to_string()],
            design: design_info(net, "tiny", "tiny.blif"),
        }
    }

    #[test]
    fn sweep_report_is_schema_valid() {
        let net = tiny_net();
        let cfg = SweepConfig {
            guided_iterations: 2,
            ..SweepConfig::default()
        };
        let mut gen = SimGen::new(SimGenConfig::default());
        let mut obs = Observer::enabled();
        let sweep = Sweeper::new(cfg).run_observed(&net, &mut gen, &Deadline::never(), &mut obs);
        let report = sweep_run_report(meta_for(&net, "sweep"), &cfg, &sweep, &obs);
        RunReport::validate(&report.to_json()).expect("sweep report validates");
        assert_eq!(report.outcome.status, "complete");
        assert!(!report.phases.is_empty(), "enabled observer records phases");
        assert!(report
            .counters
            .iter()
            .any(|&(name, v)| name == "proofs_dispatched" && v > 0));
    }

    #[test]
    fn disabled_observer_still_yields_valid_report() {
        let net = tiny_net();
        let cfg = SweepConfig {
            guided_iterations: 2,
            jobs: 2,
            ..SweepConfig::default()
        };
        let mut gen = SimGen::new(SimGenConfig::default());
        let mut obs = Observer::disabled();
        let sweep =
            ParallelSweeper::new(cfg).run_observed(&net, &mut gen, &Deadline::never(), &mut obs);
        let report = sweep_run_report(meta_for(&net, "sweep"), &cfg, &sweep, &obs);
        RunReport::validate(&report.to_json()).expect("report validates without recording");
        // A disabled recorder never reads the clock, so no phases.
        assert!(report.phases.is_empty());
        // But engine-side stats (kernel shape, sweep totals) are
        // always collected.
        assert!(report.sim.is_some());
        assert_eq!(report.dispatch.as_ref().unwrap().jobs, 2);
    }

    #[test]
    fn cec_report_maps_verdict_to_exit_code() {
        let net = tiny_net();
        let cfg = SweepConfig {
            guided_iterations: 1,
            ..SweepConfig::default()
        };
        let mut gen = SimGen::new(SimGenConfig::default());
        let mut obs = Observer::enabled();
        let cec = check_equivalence_observed(
            &net,
            &net.clone(),
            &mut gen,
            cfg,
            &Deadline::never(),
            &mut obs,
        )
        .unwrap();
        let report = cec_run_report(meta_for(&net, "cec"), &cfg, &cec, &obs);
        RunReport::validate(&report.to_json()).expect("cec report validates");
        assert_eq!(report.outcome.status, "equivalent");
        assert_eq!(report.outcome.exit_code, 0);
        // The sat section folds the output proofs in on top of the
        // sweep's internal proofs.
        assert!(report.sat.as_ref().unwrap().calls >= cec.output_sat_calls);
    }

    #[test]
    fn config_json_covers_every_field() {
        let cfg = SweepConfig::default();
        let entries = sweep_config_json(&cfg);
        let keys: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            keys,
            [
                "random_rounds",
                "random_batch",
                "guided_iterations",
                "sat_budget",
                "run_sat",
                "proof",
                "seed",
                "jobs",
                "budget_schedule",
                "stall",
                "certify",
                "engine_mode",
                "incremental",
                "rebuild_bloat",
                "mem_budget",
            ]
        );
        assert!(matches!(
            entries.iter().find(|(k, _)| k == "budget_schedule"),
            Some((_, Json::Null))
        ));
    }
}
