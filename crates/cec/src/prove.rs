//! SAT-based equivalence proofs for candidate node pairs.
//!
//! Each pair query runs in an assumption [`Scope`] on one long-lived
//! solver: both fanin cones are (lazily) Tseitin-encoded once, the
//! miter `a ⊕ b` is added as two clauses guarded by the scope's
//! activation literal, and the query assumes that literal. UNSAT
//! proves the pair equivalent; SAT is canonicalized to the
//! lexicographically smallest distinguishing input vector (so warm
//! and cold solvers refine simulation classes identically); a
//! conflict-budget overrun returns [`ProveOutcome::Undecided`]
//! carrying the number of conflicts the aborted attempt consumed
//! (the dispatch layer's escalation signal). Resolved scopes are
//! retired lazily and in batches: a finished scope parks in a pending
//! list at the *next* query (so DRAT certificates can be extracted
//! between queries while the refutation is still the tail of the
//! proof log), and the pending list is flushed — each scope's `¬act`
//! unit pushed — only once [`RETIRE_BATCH`] scopes have accumulated.
//! Deferral is sound because an unretired scope's miter clauses stay
//! guarded by its unassigned activation literal: any model extends
//! with that literal false, so later queries see the same
//! satisfiability either way; retirement only lets the solver
//! simplify the guarded clauses away sooner.

use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::{Duration, Instant};

use simgen_netlist::{LutNetwork, NodeId};
use simgen_sat::tseitin::NetworkEncoder;
use simgen_sat::{Lit, Scope, ScopeMetrics, SolveResult, Solver, Var};

/// Cold scopes buffered before one batched retirement pass (each
/// retire pushes a unit clause and re-propagates; batching amortizes
/// that across queries).
pub const RETIRE_BATCH: usize = 8;

/// Result of one pair proof.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProveOutcome {
    /// The nodes compute the same function.
    Equivalent,
    /// An input vector on which the nodes differ.
    Counterexample(Vec<bool>),
    /// The proof attempt was aborted before an answer — conflict
    /// budget exhausted, interrupt raised, or (for the BDD engine)
    /// the node limit exceeded. `conflicts` is the number of solver
    /// conflicts the aborted attempt consumed (0 for BDD blow-ups),
    /// which budget-escalation policies use to price the retry.
    Undecided {
        /// Conflicts spent by the aborted attempt.
        conflicts: u64,
    },
}

impl ProveOutcome {
    /// True for [`ProveOutcome::Undecided`].
    pub fn is_undecided(&self) -> bool {
        matches!(self, ProveOutcome::Undecided { .. })
    }
}

/// A verification engine answering pairwise node-equivalence queries
/// — the "BDD or SAT" box of the paper's Figure 2.
pub trait EquivProver {
    /// Proves or disproves `a ≡ b` (budget semantics are
    /// engine-specific; SAT counts conflicts, BDD checks a node
    /// limit at construction).
    fn prove(&mut self, a: NodeId, b: NodeId, budget: Option<u64>) -> ProveOutcome;

    /// Records a proven equivalence for reuse by later queries
    /// (no-op where canonicity already provides it).
    fn assert_equal(&mut self, a: NodeId, b: NodeId);

    /// Queries issued so far.
    fn calls(&self) -> u64;

    /// Wall time spent proving so far.
    fn time(&self) -> Duration;

    /// Cumulative CDCL statistics of the underlying solver, for
    /// engines that have one (`None` for BDDs).
    fn solver_stats(&self) -> Option<simgen_sat::SolverStats> {
        None
    }

    /// Assumption-scope reuse metrics, for engines backed by scoped
    /// incremental SAT (zero for engines without one).
    fn metrics(&self) -> ScopeMetrics {
        ScopeMetrics::default()
    }

    /// Times the engine retired a bloated solver and rebuilt it from
    /// the region's proven seeds (see
    /// [`EnginePolicy::rebuild_bloat`](simgen_dispatch::EnginePolicy)).
    /// Zero for engines without a rebuild policy.
    fn rebuilds(&self) -> u64 {
        0
    }

    /// Independently certifies the engine's most recent
    /// [`ProveOutcome::Equivalent`] answer. The default fails closed:
    /// an engine that cannot produce a checkable certificate (BDDs, or
    /// SAT without proof logging) must never be trusted under
    /// [`SweepConfig::certify`](crate::SweepConfig).
    fn certify_last(&self) -> bool {
        false
    }

    /// The serialized DRAT blob of the engine's most recent
    /// [`ProveOutcome::Equivalent`] answer, for storage in the proof
    /// cache. `None` where no checkable certificate exists (BDDs, or
    /// SAT without proof logging) — such verdicts are cached without a
    /// proof and re-proved when a certified run later needs them.
    fn proof_blob(&self) -> Option<Vec<u8>> {
        None
    }
}

/// Incremental prover bound to one network.
#[derive(Debug)]
pub struct PairProver<'n> {
    net: &'n LutNetwork,
    solver: Solver,
    encoder: NetworkEncoder,
    calls: u64,
    time: Duration,
    metrics: ScopeMetrics,
    /// The most recent query's scope, kept open until the next query
    /// so [`PairProver::certificate`] can read the refutation first:
    /// retiring pushes the `¬act` unit into the DRAT-logged formula,
    /// which would satisfy the guarded miter clauses and make the
    /// certificate vacuous.
    open_scope: Option<Scope>,
    /// Answered scopes awaiting batched retirement (see the module
    /// docs): flushed once [`RETIRE_BATCH`] have accumulated.
    pending_retire: Vec<Scope>,
}

impl<'n> PairProver<'n> {
    /// Creates a prover for `net`.
    pub fn new(net: &'n LutNetwork) -> Self {
        PairProver {
            net,
            solver: Solver::new(),
            encoder: NetworkEncoder::new(net),
            calls: 0,
            time: Duration::ZERO,
            metrics: ScopeMetrics::default(),
            open_scope: None,
            pending_retire: Vec::new(),
        }
    }

    /// Number of SAT calls issued so far.
    pub fn calls(&self) -> u64 {
        self.calls
    }

    /// Scope/reuse metrics accumulated across this prover's queries.
    pub fn metrics(&self) -> ScopeMetrics {
        self.metrics
    }

    /// Answered scopes buffered for the next batched retirement pass.
    pub fn pending_retirements(&self) -> usize {
        self.pending_retire.len()
    }

    /// Installs a shared interrupt flag on the underlying solver;
    /// while raised, [`PairProver::prove`] returns
    /// [`ProveOutcome::Undecided`] instead of searching.
    pub fn set_interrupt(&mut self, flag: Arc<AtomicBool>) {
        self.solver.set_interrupt(flag);
    }

    /// Binds a [`Deadline`](simgen_dispatch::Deadline) to the
    /// underlying solver: its shared flag
    /// becomes the interrupt hook (so a watchdog trip aborts the
    /// in-flight solve) and its expiry instant is checked by the CDCL
    /// loop itself (so expiry fires even without a watchdog). After
    /// the deadline passes, every [`PairProver::prove`] answers
    /// [`ProveOutcome::Undecided`].
    pub fn bind_deadline(&mut self, deadline: &simgen_dispatch::Deadline) {
        self.solver.set_interrupt(deadline.flag());
        self.solver.set_deadline(deadline.expires_at());
    }

    /// Wall time spent inside the solver so far.
    pub fn time(&self) -> Duration {
        self.time
    }

    /// Turns on DRAT proof logging in the underlying solver so that
    /// every [`ProveOutcome::Equivalent`] answer can be independently
    /// revalidated (see [`certify`](crate::certify)). Must be called
    /// before the first query; `byte_budget` bounds the recorded
    /// proof text.
    pub fn enable_certification(&mut self, byte_budget: u64) {
        self.solver.enable_proof_logging(byte_budget);
    }

    /// The DRAT certificate of the most recent query, present iff
    /// that query answered [`ProveOutcome::Equivalent`] with
    /// certification enabled and the proof log intact.
    pub fn certificate(&self) -> Option<simgen_sat::Certificate<'_>> {
        self.solver.certificate()
    }

    /// Cumulative CDCL statistics of the underlying solver.
    pub fn solver_stats(&self) -> simgen_sat::SolverStats {
        self.solver.stats()
    }

    /// Records a *proven* equivalence as two binary clauses
    /// (`a → b`, `b → a`), so every later query benefits — the
    /// incremental analogue of fraiging's node merging, without which
    /// proofs of deep pairs re-derive all their fanin equivalences
    /// from scratch.
    ///
    /// Only call this for pairs previously answered
    /// [`ProveOutcome::Equivalent`]; asserting a false equivalence
    /// makes all subsequent answers meaningless.
    pub fn assert_equal(&mut self, a: NodeId, b: NodeId) {
        let va = self.encoder.encode_cone(self.net, &mut self.solver, a);
        let vb = self.encoder.encode_cone(self.net, &mut self.solver, b);
        self.solver.add_clause(&[Lit::neg(va), Lit::pos(vb)]);
        self.solver.add_clause(&[Lit::pos(va), Lit::neg(vb)]);
    }

    /// Proves or disproves `a ≡ b` with one assumption-scoped SAT
    /// call.
    ///
    /// `budget` bounds the solver's conflicts (`None` = unbounded).
    pub fn prove(&mut self, a: NodeId, b: NodeId, budget: Option<u64>) -> ProveOutcome {
        let start = Instant::now();
        if let Some(prev) = self.open_scope.take() {
            self.pending_retire.push(prev);
            if self.pending_retire.len() >= RETIRE_BATCH {
                for scope in self.pending_retire.drain(..) {
                    scope.retire(&mut self.solver);
                }
            }
        }
        if self.calls > 0 {
            self.metrics.warm_solves += 1;
        }
        let va = self.encoder.encode_cone(self.net, &mut self.solver, a);
        let vb = self.encoder.encode_cone(self.net, &mut self.solver, b);
        let scope = Scope::open(&mut self.solver, &mut self.metrics);
        // The miter a ⊕ b as two guarded one-directional clauses,
        // act → (a ∨ b) and act → (¬a ∨ ¬b). One-directional is what
        // keeps retirement sound: the eventual `¬act` unit must
        // deactivate the miter, not assert `a ≡ b`.
        scope.add_clause(&mut self.solver, &[Lit::pos(va), Lit::pos(vb)]);
        scope.add_clause(&mut self.solver, &[Lit::neg(va), Lit::neg(vb)]);
        self.calls += 1;
        let conflicts_before = self.solver.stats().conflicts;
        let result = scope.solve(&mut self.solver, &[], budget);
        let outcome = match result {
            SolveResult::Unsat => ProveOutcome::Equivalent,
            SolveResult::Sat => ProveOutcome::Counterexample(self.canonical_witness(&scope, a, b)),
            SolveResult::Unknown => ProveOutcome::Undecided {
                conflicts: self.solver.stats().conflicts - conflicts_before,
            },
        };
        self.open_scope = Some(scope);
        self.time += start.elapsed();
        outcome
    }

    /// The pair's support: PIs reachable from `a` or `b`, in
    /// `net.pis()` order.
    fn support_pis(&self, a: NodeId, b: NodeId) -> Vec<NodeId> {
        let mut seen = vec![false; self.net.len()];
        let mut stack = vec![a, b];
        while let Some(n) = stack.pop() {
            if seen[n.index()] {
                continue;
            }
            seen[n.index()] = true;
            stack.extend_from_slice(self.net.fanins(n));
        }
        self.net
            .pis()
            .iter()
            .copied()
            .filter(|pi| seen[pi.index()])
            .collect()
    }

    /// Reduces the satisfying assignment to the lexicographically
    /// smallest distinguishing input vector over `net.pis()` order
    /// (false < true; PIs outside the pair's support stay false).
    ///
    /// A witness that is a pure function of `(net, a, b)` — not of
    /// solver state — is what keeps warm region solvers and cold
    /// per-pair solvers byte-identical downstream: resimulation
    /// refines the candidate classes the same way in both modes.
    /// Every auxiliary constraint a warm solver might hold (seed
    /// equalities, retired scopes, learnt clauses) is implied or
    /// deactivated, so each minimization query is satisfiable in one
    /// mode iff it is in the other.
    fn canonical_witness(&mut self, scope: &Scope, a: NodeId, b: NodeId) -> Vec<bool> {
        let support = self.support_pis(a, b);
        let vars: Vec<Var> = support
            .iter()
            .map(|&pi| self.encoder.encode_cone(self.net, &mut self.solver, pi))
            .collect();
        let mut model: Vec<bool> = vars
            .iter()
            .map(|&v| self.solver.value(v).unwrap_or(false))
            .collect();
        let mut fixed: Vec<Lit> = Vec::with_capacity(vars.len());
        let mut needs_restore = false;
        for i in 0..vars.len() {
            let v = vars[i];
            if !model[i] {
                fixed.push(Lit::neg(v));
                continue;
            }
            // The current model has this PI true; ask whether some
            // distinguishing input keeps the fixed prefix and turns
            // it false.
            let mut assumptions = fixed.clone();
            assumptions.push(Lit::neg(v));
            match scope.solve(&mut self.solver, &assumptions, None) {
                SolveResult::Sat => {
                    fixed.push(Lit::neg(v));
                    model[i] = false;
                    for j in (i + 1)..vars.len() {
                        model[j] = self.solver.value(vars[j]).unwrap_or(false);
                    }
                    needs_restore = false;
                }
                SolveResult::Unsat => {
                    // This PI is forced true given the prefix; the
                    // model we already hold satisfies the extended
                    // prefix, so it stays valid.
                    fixed.push(Lit::pos(v));
                    needs_restore = true;
                }
                // Interrupt/deadline: keep the best vector so far.
                SolveResult::Unknown => {
                    needs_restore = false;
                    break;
                }
            }
        }
        if needs_restore {
            // The last solve answered Unsat, which (under proof
            // logging) would leave a certificate claiming a
            // refutation for a pair that is NOT equivalent. Re-solve
            // under the full prefix — guaranteed satisfiable by the
            // model we kept — so the solver's final answer matches
            // the Counterexample verdict.
            scope.solve(&mut self.solver, &fixed, None);
        }
        let mut vector = vec![false; self.net.num_pis()];
        let mut k = 0;
        for (pi_index, &pi) in self.net.pis().iter().enumerate() {
            if k < support.len() && support[k] == pi {
                vector[pi_index] = model[k];
                k += 1;
            }
        }
        vector
    }
}

impl EquivProver for PairProver<'_> {
    fn prove(&mut self, a: NodeId, b: NodeId, budget: Option<u64>) -> ProveOutcome {
        PairProver::prove(self, a, b, budget)
    }

    fn assert_equal(&mut self, a: NodeId, b: NodeId) {
        PairProver::assert_equal(self, a, b);
    }

    fn calls(&self) -> u64 {
        PairProver::calls(self)
    }

    fn time(&self) -> Duration {
        PairProver::time(self)
    }

    fn solver_stats(&self) -> Option<simgen_sat::SolverStats> {
        Some(PairProver::solver_stats(self))
    }

    fn metrics(&self) -> ScopeMetrics {
        PairProver::metrics(self)
    }

    fn certify_last(&self) -> bool {
        crate::certify::certify_equivalence(self)
    }

    fn proof_blob(&self) -> Option<Vec<u8>> {
        self.certificate()
            .map(|c| simgen_cache::serialize_certificate(&c))
    }
}

/// BDD-based prover: builds the whole network's BDDs once (guarded by
/// a node limit), after which every query is a pointer comparison and
/// counterexamples are XOR paths. Mirrors the classic BDD sweeping of
/// Kuehlmann & Krohm; blows up on arithmetic, which is exactly the
/// behaviour the SAT transition of the 2000s addressed.
#[derive(Debug)]
pub struct BddProver<'n> {
    net: &'n LutNetwork,
    node_limit: usize,
    bdds: Option<Option<simgen_bdd::NetworkBdds>>,
    calls: u64,
    time: Duration,
}

impl<'n> BddProver<'n> {
    /// Creates a BDD prover; construction is lazy (first query pays).
    /// `node_limit` bounds manager growth before giving up.
    pub fn new(net: &'n LutNetwork, node_limit: usize) -> Self {
        BddProver {
            net,
            node_limit,
            bdds: None,
            calls: 0,
            time: Duration::ZERO,
        }
    }

    /// True once construction was attempted and hit the node limit.
    pub fn blew_up(&self) -> bool {
        matches!(self.bdds, Some(None))
    }
}

impl EquivProver for BddProver<'_> {
    fn prove(&mut self, a: NodeId, b: NodeId, _budget: Option<u64>) -> ProveOutcome {
        let start = Instant::now();
        self.calls += 1;
        if self.bdds.is_none() {
            self.bdds = Some(simgen_bdd::network_bdds(self.net, self.node_limit));
        }
        let outcome = match self.bdds.as_mut().expect("just built") {
            None => ProveOutcome::Undecided { conflicts: 0 }, // node limit exceeded
            Some(nb) => match nb.counterexample(a, b) {
                None => ProveOutcome::Equivalent,
                Some(cex) => ProveOutcome::Counterexample(cex),
            },
        };
        self.time += start.elapsed();
        outcome
    }

    fn assert_equal(&mut self, _a: NodeId, _b: NodeId) {
        // Canonicity already makes equal functions share handles.
    }

    fn calls(&self) -> u64 {
        self.calls
    }

    fn time(&self) -> Duration {
        self.time
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simgen_netlist::TruthTable;

    fn demo_net() -> (LutNetwork, NodeId, NodeId, NodeId) {
        // x = a & b; y = !(!a | !b) (equivalent); z = a | b (different).
        let mut net = LutNetwork::new();
        let a = net.add_pi("a");
        let b = net.add_pi("b");
        let x = net.add_lut(vec![a, b], TruthTable::and2()).unwrap();
        let na = net.add_lut(vec![a], TruthTable::not1()).unwrap();
        let nb = net.add_lut(vec![b], TruthTable::not1()).unwrap();
        let o = net.add_lut(vec![na, nb], TruthTable::or2()).unwrap();
        let y = net.add_lut(vec![o], TruthTable::not1()).unwrap();
        let z = net.add_lut(vec![a, b], TruthTable::or2()).unwrap();
        net.add_po(x, "x");
        net.add_po(y, "y");
        net.add_po(z, "z");
        (net, x, y, z)
    }

    #[test]
    fn proves_equivalence() {
        let (net, x, y, _) = demo_net();
        let mut p = PairProver::new(&net);
        assert_eq!(p.prove(x, y, None), ProveOutcome::Equivalent);
        assert_eq!(p.calls(), 1);
    }

    #[test]
    fn finds_counterexample() {
        let (net, x, _, z) = demo_net();
        let mut p = PairProver::new(&net);
        match p.prove(x, z, None) {
            ProveOutcome::Counterexample(v) => {
                let vals = net.eval(&v);
                assert_ne!(vals[x.index()], vals[z.index()], "cex must distinguish");
            }
            other => panic!("expected counterexample, got {other:?}"),
        }
    }

    #[test]
    fn incremental_reuse_across_pairs() {
        let (net, x, y, z) = demo_net();
        let mut p = PairProver::new(&net);
        assert_eq!(p.prove(x, y, None), ProveOutcome::Equivalent);
        assert!(matches!(
            p.prove(x, z, None),
            ProveOutcome::Counterexample(_)
        ));
        assert!(matches!(
            p.prove(y, z, None),
            ProveOutcome::Counterexample(_)
        ));
        // Re-asking an answered query still works (learned clauses
        // persist but assumptions isolate queries).
        assert_eq!(p.prove(x, y, None), ProveOutcome::Equivalent);
        assert_eq!(p.calls(), 4);
        assert!(p.time() > Duration::ZERO);
    }

    #[test]
    fn budget_zero_gives_unknown_on_nontrivial_pair() {
        // A pair that needs at least some search: two xor trees over
        // the same inputs with different association.
        let mut net = LutNetwork::new();
        let pis: Vec<NodeId> = (0..6).map(|i| net.add_pi(format!("p{i}"))).collect();
        let mut l = pis[0];
        for &p in &pis[1..] {
            l = net.add_lut(vec![l, p], TruthTable::xor2()).unwrap();
        }
        let mut r = pis[5];
        for &p in pis[..5].iter().rev() {
            r = net.add_lut(vec![r, p], TruthTable::xor2()).unwrap();
        }
        net.add_po(l, "l");
        net.add_po(r, "r");
        let mut p = PairProver::new(&net);
        // A tiny budget is a hard cap: the attempt aborts and reports
        // how many conflicts it burned (bounded by budget + 1).
        match p.prove(l, r, Some(1)) {
            ProveOutcome::Undecided { conflicts } => {
                assert!((1..=2).contains(&conflicts), "conflicts {conflicts}");
            }
            other => panic!("expected undecided, got {other:?}"),
        }
        // Unbounded: equivalent.
        assert_eq!(p.prove(l, r, None), ProveOutcome::Equivalent);
    }

    #[test]
    fn interrupted_prover_returns_undecided() {
        use std::sync::atomic::Ordering;
        let (net, x, y, _) = demo_net();
        let mut p = PairProver::new(&net);
        let flag = Arc::new(AtomicBool::new(true));
        p.set_interrupt(Arc::clone(&flag));
        assert!(p.prove(x, y, None).is_undecided());
        flag.store(false, Ordering::Relaxed);
        assert_eq!(p.prove(x, y, None), ProveOutcome::Equivalent);
    }

    #[test]
    fn node_vs_itself_is_equivalent() {
        let (net, x, _, _) = demo_net();
        let mut p = PairProver::new(&net);
        assert_eq!(p.prove(x, x, None), ProveOutcome::Equivalent);
    }

    #[test]
    fn counterexamples_are_canonical_lex_minimal() {
        // x = a & b vs z = a | b differ on (0,1) and (1,0); the
        // lex-min witness over (a, b) is (false, true).
        let (net, x, y, z) = demo_net();
        let mut warm = PairProver::new(&net);
        assert_eq!(warm.prove(x, y, None), ProveOutcome::Equivalent);
        let from_warm = match warm.prove(x, z, None) {
            ProveOutcome::Counterexample(v) => v,
            other => panic!("expected counterexample, got {other:?}"),
        };
        let mut cold = PairProver::new(&net);
        let from_cold = match cold.prove(x, z, None) {
            ProveOutcome::Counterexample(v) => v,
            other => panic!("expected counterexample, got {other:?}"),
        };
        assert_eq!(from_warm, vec![false, true], "lex-min over PI order");
        assert_eq!(
            from_warm, from_cold,
            "witness is a function of the pair, not of solver history"
        );
    }

    #[test]
    fn retirement_batches_and_flushes_at_threshold() {
        let (net, x, y, _) = demo_net();
        let mut p = PairProver::new(&net);
        // Query 1 opens a scope but has no predecessor to park.
        assert_eq!(p.prove(x, y, None), ProveOutcome::Equivalent);
        assert_eq!(p.pending_retirements(), 0);
        // Queries 2..=RETIRE_BATCH each park one predecessor.
        for i in 2..=RETIRE_BATCH {
            assert_eq!(p.prove(x, y, None), ProveOutcome::Equivalent);
            assert_eq!(p.pending_retirements(), i - 1);
        }
        // Query RETIRE_BATCH+1 parks the RETIRE_BATCH-th scope, which
        // triggers the flush — and the answer is still correct with
        // the batch's deactivation units in flight.
        assert_eq!(p.prove(x, y, None), ProveOutcome::Equivalent);
        assert_eq!(p.pending_retirements(), 0);
    }

    #[test]
    fn metrics_track_scopes_and_warm_starts() {
        let (net, x, y, z) = demo_net();
        let mut p = PairProver::new(&net);
        assert_eq!(p.metrics(), ScopeMetrics::default());
        p.prove(x, y, None);
        assert_eq!(p.metrics().scopes_opened, 1);
        assert_eq!(p.metrics().warm_solves, 0, "first query is cold");
        p.prove(y, z, None);
        assert_eq!(p.metrics().scopes_opened, 2);
        assert_eq!(p.metrics().warm_solves, 1);
    }
}
