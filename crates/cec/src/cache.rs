//! Sweep-side adapter over the content-addressed proof cache.
//!
//! Both sweepers (and the output proofs of the CEC flow) consult the
//! cache through this one wrapper so the trust policy lives in a
//! single place:
//!
//! - A cached **counterexample** is trusted only after the scalar
//!   reference evaluator replays it — sound no matter where the entry
//!   came from, because the replay itself re-establishes the verdict.
//! - A cached **equivalence** is trusted as-is in a plain run (same
//!   trust level as a live solver answer), but under
//!   [`SweepConfig::certify`](crate::SweepConfig) only after the
//!   stored DRAT blob passes the independent backward-RUP checker —
//!   the same bar a live proof has to clear.
//! - An entry that fails its check is **evicted** and the pair falls
//!   through to a live proof, so a corrupted or truncated cache can
//!   cost time but never an answer.
//!
//! All lookups and inserts happen on the orchestrating thread in
//! deterministic pair order, which keeps the `cache_*` counters
//! `--jobs`-invariant for a fixed starting cache state.

use std::collections::HashMap;

use simgen_cache::{pair_key, CacheEntry, CachedVerdict, ProofCache};
use simgen_netlist::{LutNetwork, NodeId};
use simgen_obs::{Counter, Json, Observer};
use simgen_sim::Replayer;

use crate::prove::ProveOutcome;

/// What a cache lookup resolved a pair to.
pub(crate) enum CacheLookup {
    /// The pair is answered by a trusted entry; the witness (if any)
    /// is already widened to a full primary-input vector.
    Hit(ProveOutcome),
    /// No usable entry — prove live (a rejected entry was evicted and
    /// also lands here).
    Miss,
}

/// A [`ProofCache`] bound to one sweep's trust settings.
pub(crate) struct SweepCache<'c> {
    cache: &'c ProofCache,
    certify: bool,
    /// Scalar evaluator for witness replay (scratch buffers reused).
    replayer: Replayer,
}

impl<'c> SweepCache<'c> {
    pub(crate) fn new(cache: &'c ProofCache, certify: bool) -> Self {
        SweepCache {
            cache,
            certify,
            replayer: Replayer::new(),
        }
    }

    /// Looks up the pair `(a, b)` and applies the trust policy.
    /// Counter bumps: every call adds exactly one of
    /// [`Counter::CacheHits`] or [`Counter::CacheMisses`]; verified
    /// replays add [`Counter::CacheReplays`]; rejected entries add
    /// [`Counter::CacheEvictions`] (and count as misses).
    pub(crate) fn resolve(
        &mut self,
        net: &LutNetwork,
        a: NodeId,
        b: NodeId,
        obs: &mut Observer,
    ) -> CacheLookup {
        let (key, support) = pair_key(net, a, b);
        let Some(entry) = self.cache.lookup(&key) else {
            obs.recorder.add(Counter::CacheMisses, 1);
            return CacheLookup::Miss;
        };
        let (verdict, replayed) = match entry.verdict {
            CachedVerdict::Equivalent { ref proof } => {
                if !self.certify {
                    (Some(ProveOutcome::Equivalent), false)
                } else if !proof.is_empty() && simgen_cache::verify_proof(proof) {
                    // Same trust level as a live certified answer: the
                    // independent checker accepted the stored proof.
                    (Some(ProveOutcome::Equivalent), true)
                } else {
                    // Uncertified entry (empty proof) or a blob the
                    // checker refused: unusable under certify.
                    (None, false)
                }
            }
            CachedVerdict::NotEquivalent { ref witness } => {
                // Witnesses are stored in canonical support order;
                // widen to a full PI vector before replaying. A
                // support/witness length mismatch simply fails the
                // replay and evicts the entry.
                match widen_witness(net, &support, witness) {
                    Some(full) if self.replayer.distinguishes(net, &full, a, b) => {
                        (Some(ProveOutcome::Counterexample(full)), true)
                    }
                    _ => (None, false),
                }
            }
        };
        match verdict {
            Some(outcome) => {
                obs.recorder.add(Counter::CacheHits, 1);
                if replayed {
                    obs.recorder.add(Counter::CacheReplays, 1);
                }
                if obs.trace.is_enabled() {
                    let name = match &outcome {
                        ProveOutcome::Equivalent => "equivalent",
                        _ => "disproved",
                    };
                    obs.trace.emit(
                        "cache_hit",
                        vec![
                            ("rep", Json::U64(a.index() as u64)),
                            ("cand", Json::U64(b.index() as u64)),
                            ("verdict", Json::Str(name.to_string())),
                            ("replayed", Json::Bool(replayed)),
                        ],
                    );
                }
                CacheLookup::Hit(outcome)
            }
            None => {
                // Trust check failed: drop the entry so the live
                // verdict can replace it, and treat the pair as a miss.
                self.cache.evict(&key);
                obs.recorder.add(Counter::CacheEvictions, 1);
                obs.recorder.add(Counter::CacheMisses, 1);
                obs.trace.emit(
                    "cache_entry_rejected",
                    vec![
                        ("rep", Json::U64(a.index() as u64)),
                        ("cand", Json::U64(b.index() as u64)),
                    ],
                );
                CacheLookup::Miss
            }
        }
    }

    /// Stores a live verdict for the pair `(a, b)`. `proof` is the
    /// serialized DRAT blob of an `Equivalent` answer when available
    /// (certified runs); an entry stored without one still answers
    /// plain lookups but is evicted-and-reproved under certify.
    /// Undecided outcomes are never cached — a budget is not a fact
    /// about the cones.
    pub(crate) fn store(
        &mut self,
        net: &LutNetwork,
        a: NodeId,
        b: NodeId,
        outcome: &ProveOutcome,
        proof: Option<Vec<u8>>,
        obs: &mut Observer,
    ) {
        let verdict = match outcome {
            ProveOutcome::Equivalent => CachedVerdict::Equivalent {
                proof: proof.unwrap_or_default(),
            },
            ProveOutcome::Counterexample(full) => {
                let (_, support) = pair_key(net, a, b);
                let Some(witness) = narrow_witness(net, &support, full) else {
                    return;
                };
                CachedVerdict::NotEquivalent { witness }
            }
            ProveOutcome::Undecided { .. } => return,
        };
        let key = pair_key(net, a, b).0;
        let evicted = self.cache.insert(key, CacheEntry::pair(verdict));
        obs.recorder.add(Counter::CacheEvictions, evicted as u64);
    }
}

/// Expands a support-ordered witness into a full primary-input vector
/// (PIs outside the support are false — they cannot affect the cones).
fn widen_witness(net: &LutNetwork, support: &[NodeId], witness: &[bool]) -> Option<Vec<bool>> {
    if support.len() != witness.len() {
        return None;
    }
    let index: HashMap<NodeId, usize> = net
        .pis()
        .iter()
        .enumerate()
        .map(|(i, &pi)| (pi, i))
        .collect();
    let mut full = vec![false; net.num_pis()];
    for (&pi, &bit) in support.iter().zip(witness) {
        full[*index.get(&pi)?] = bit;
    }
    Some(full)
}

/// Projects a full primary-input vector down to canonical support
/// order — the form witnesses are stored in, so the entry stays valid
/// under node renumbering.
fn narrow_witness(net: &LutNetwork, support: &[NodeId], full: &[bool]) -> Option<Vec<bool>> {
    if full.len() != net.num_pis() {
        return None;
    }
    let index: HashMap<NodeId, usize> = net
        .pis()
        .iter()
        .enumerate()
        .map(|(i, &pi)| (pi, i))
        .collect();
    support
        .iter()
        .map(|pi| index.get(pi).map(|&i| full[i]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simgen_netlist::TruthTable;

    #[test]
    fn witness_round_trips_through_support_order() {
        let mut net = LutNetwork::new();
        let pis: Vec<NodeId> = (0..5).map(|i| net.add_pi(format!("p{i}"))).collect();
        // Cone over p3, p1 only (support order differs from PI order).
        let g = net
            .add_lut(vec![pis[3], pis[1]], TruthTable::and2())
            .unwrap();
        let h = net
            .add_lut(vec![pis[3], pis[1]], TruthTable::or2())
            .unwrap();
        net.add_po(g, "g");
        net.add_po(h, "h");
        let (_, support) = pair_key(&net, g, h);
        assert_eq!(support.len(), 2);
        let full = vec![false, true, false, true, false];
        let narrow = narrow_witness(&net, &support, &full).unwrap();
        let widened = widen_witness(&net, &support, &narrow).unwrap();
        // Support bits survive; non-support PIs are zeroed.
        assert!(widened[1]);
        assert!(widened[3]);
        assert_eq!(widened.iter().filter(|&&b| b).count(), 2);
    }

    #[test]
    fn length_mismatches_are_rejected() {
        let mut net = LutNetwork::new();
        let a = net.add_pi("a");
        let b = net.add_pi("b");
        let g = net.add_lut(vec![a, b], TruthTable::and2()).unwrap();
        net.add_po(g, "g");
        let (_, support) = pair_key(&net, g, a);
        assert!(widen_witness(&net, &support, &[true]).is_none() || support.len() == 1);
        assert!(widen_witness(&net, &support, &vec![true; support.len() + 1]).is_none());
        assert!(narrow_witness(&net, &support, &[true]).is_none());
    }
}
