//! SAT sweeping and combinational equivalence checking, built around
//! pluggable simulation-pattern generators — the complete "sweeping
//! tool" of the paper's Figure 2.
//!
//! The flow mirrors ABC's: random simulation seeds the equivalence
//! classes; a guided generator ([`simgen_core::PatternGenerator`])
//! refines them; the SAT solver resolves whatever simulation could not
//! split, feeding counterexamples back into the simulator. The
//! statistics the paper reports — class cost (Equation 5), simulation
//! runtime, SAT calls and SAT runtime — are collected throughout.
//!
//! # Example
//!
//! Sweep a small network with SimGen patterns:
//!
//! ```
//! use simgen_cec::{Sweeper, SweepConfig};
//! use simgen_core::{SimGen, SimGenConfig};
//! use simgen_netlist::{LutNetwork, TruthTable};
//!
//! let mut net = LutNetwork::new();
//! let a = net.add_pi("a");
//! let b = net.add_pi("b");
//! let x = net.add_lut(vec![a, b], TruthTable::and2()).unwrap();
//! let y = net.add_lut(vec![b, a], TruthTable::and2()).unwrap();
//! net.add_po(x, "x");
//! net.add_po(y, "y");
//!
//! let mut gen = SimGen::new(SimGenConfig::default());
//! let report = Sweeper::new(SweepConfig::default()).run(&net, &mut gen);
//! // The two identical ANDs are proven equivalent by SAT.
//! assert_eq!(report.stats.proved_equivalent, 1);
//! assert_eq!(report.unresolved.len(), 0);
//! ```

pub mod cache;
pub mod certify;
pub mod flow;
pub mod govern;
pub mod journal;
pub mod parallel;
pub mod prove;
pub mod region;
pub mod report;
pub mod stats;
pub mod sweep;

pub use certify::{certify_counterexample, certify_equivalence, PROOF_BYTE_BUDGET};
pub use flow::{
    check_equivalence, check_equivalence_cached, check_equivalence_checkpointed,
    check_equivalence_observed, check_equivalence_under, CecReport, CecVerdict, InconclusiveReason,
    SwitchOnPlateau,
};
pub use govern::{estimate_resident, MemoryGovernor};
pub use journal::{
    JournalVerdict, PairRecord, RoundRecord, SweepJournal, CRASH_ENV, JOURNAL_FILE, JOURNAL_SCHEMA,
};
pub use parallel::ParallelSweeper;
pub use prove::{BddProver, EquivProver, PairProver, ProveOutcome};
pub use region::RegionMap;
pub use report::{cec_run_report, design_info, sweep_config_json, sweep_run_report, RunMeta};
pub use simgen_cache::{job_key, pair_key, CacheKey, ProofCache};
pub use simgen_dispatch::{BudgetSchedule, Deadline, EngineMode, EnginePolicy, Progress, Watchdog};
#[cfg(feature = "fault-inject")]
pub use simgen_dispatch::{FaultAction, FaultPlan};
pub use stats::{DispatchSummary, IterationRecord, SweepStats, WorkerSummary};
pub use sweep::{ProofEngine, SweepConfig, SweepReport, Sweeper};
