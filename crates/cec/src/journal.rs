//! Write-ahead sweep journal: crash-safe checkpoint/resume for the
//! round-synchronized parallel sweeper.
//!
//! At every round barrier the sweeper appends one record describing
//! everything the round decided: the resolved pair verdicts (with
//! counterexample witnesses), how many pairs were dispatched to
//! workers, a signature of the surviving equivalence-class partition,
//! and cumulative snapshots of the deterministic counters and sweep
//! statistics. The journal is a checksummed JSONL file rewritten with
//! [`simgen_obs::atomic_write`] on each commit, so a crash at any
//! instant leaves either the previous complete journal or the new one
//! — never a torn record.
//!
//! ## Resume semantics
//!
//! The simulation phases are deterministic and cheap relative to SAT,
//! so a resumed run re-executes them live and only skips the proof
//! dispatches. For each journaled round the sweeper:
//!
//! 1. rebuilds the round's candidate pairs from its own (live) state
//!    and checks they match the record — a mismatch means the journal
//!    belongs to a different run, and replay stops there;
//! 2. applies the recorded verdicts through the same merge logic a
//!    live round uses (merges, counterexample buffering, quarantine),
//!    **without** bumping any counters or statistics;
//! 3. re-runs the counterexample resimulation flush live (it is
//!    deterministic, and it rebuilds the pattern set and class
//!    partition exactly as the original run saw them);
//! 4. restores the counter and statistics snapshots from the record,
//!    making the observable state byte-identical to the original
//!    run's state at that barrier;
//! 5. verifies the class-partition signature.
//!
//! Because the restored state equals the crashed run's state at the
//! last complete barrier — which equals an uninterrupted run's state
//! at the same barrier — the rounds that follow, and the stripped
//! run report, are byte-identical to an uninterrupted run.
//!
//! Already-certified verdicts are not re-proved: an `Equivalent`
//! record was only written after the live round's trust checks
//! (DRAT certification under `--certify`) passed, and journaled
//! counterexamples are re-validated structurally by the live
//! resimulation flush, which refines classes only where the witness
//! actually distinguishes nodes.

use std::collections::HashSet;
use std::io;
use std::path::PathBuf;

use simgen_cache::{job_key, Sha256};
use simgen_netlist::{LutNetwork, NodeId};
use simgen_obs::{atomic_write, Counter, Json, Observer};

use crate::stats::{DispatchSummary, SweepStats};
use crate::sweep::SweepConfig;

/// Magic schema tag on the journal's meta line. Version 2 widened the
/// snapshot's solver row with `clause_db_bytes` (so the parallel
/// sweeper's memory governor sees identical estimates across a
/// resume) — version-1 journals fail the meta check and degrade to a
/// fresh live run, which is always sound.
pub const JOURNAL_SCHEMA: &str = "simgen-sweep-journal/2";

/// File name of the journal inside a checkpoint directory.
pub const JOURNAL_FILE: &str = "sweep.journal";

/// Test hook: when this environment variable holds a round number,
/// the process SIGKILLs itself immediately after committing that
/// round's journal record — a deterministic stand-in for a crash,
/// OOM kill, or power loss at the worst possible moment.
pub const CRASH_ENV: &str = "SIMGEN_CRASH_AFTER_ROUND";

/// How one journaled pair was resolved.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JournalVerdict {
    /// Proven equivalent (certified when the run demanded it).
    Equivalent,
    /// Disproven; carries the full primary-input witness.
    Counterexample(Vec<bool>),
    /// Budget exhausted without an answer.
    Undecided,
    /// The prover panicked; the pair was quarantined.
    Panicked,
    /// The deadline expired before the pair was dispatched.
    Skipped,
    /// Certification rejected the engine's answer.
    CertificationFailed {
        /// True when a counterexample replay failed (as opposed to a
        /// DRAT certificate check).
        replay: bool,
    },
}

impl JournalVerdict {
    fn tag(&self) -> &'static str {
        match self {
            JournalVerdict::Equivalent => "eq",
            JournalVerdict::Counterexample(_) => "cex",
            JournalVerdict::Undecided => "undec",
            JournalVerdict::Panicked => "panic",
            JournalVerdict::Skipped => "skip",
            JournalVerdict::CertificationFailed { replay: true } => "certfail-replay",
            JournalVerdict::CertificationFailed { replay: false } => "certfail-check",
        }
    }
}

/// One resolved pair inside a round record (raw node indices — the
/// journal outlives any particular `LutNetwork` borrow).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PairRecord {
    /// Class representative's node index.
    pub rep: usize,
    /// Candidate's node index.
    pub cand: usize,
    /// How the pair was resolved.
    pub verdict: JournalVerdict,
}

/// Cumulative sweep-statistics snapshot at a round barrier — exactly
/// the fields that survive report stripping and are owned by the SAT
/// phase (simulation-phase fields are reproduced live on resume).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// [`SweepStats::sat_calls`].
    pub sat_calls: u64,
    /// [`SweepStats::proved_equivalent`].
    pub proved_equivalent: u64,
    /// [`SweepStats::disproved`].
    pub disproved: u64,
    /// [`SweepStats::aborted`].
    pub aborted: u64,
    /// [`SweepStats::certification_failures`].
    pub certification_failures: u64,
    /// [`SweepStats::solver`] totals, in field order: decisions,
    /// propagations, conflicts, restarts, learned, removed, solves,
    /// proof_clauses, proof_bytes, clause_db_bytes.
    pub solver: [u64; 10],
    /// [`DispatchSummary`] totals, in field order: rounds,
    /// quarantined, proofs, conflicts, timeouts, escalations, panics.
    pub dispatch: [u64; 7],
}

impl StatsSnapshot {
    /// Captures the cumulative SAT-phase state at a round barrier.
    pub(crate) fn capture(stats: &SweepStats, summary: &DispatchSummary) -> StatsSnapshot {
        let s = &stats.solver;
        StatsSnapshot {
            sat_calls: stats.sat_calls,
            proved_equivalent: stats.proved_equivalent,
            disproved: stats.disproved,
            aborted: stats.aborted,
            certification_failures: stats.certification_failures,
            solver: [
                s.decisions,
                s.propagations,
                s.conflicts,
                s.restarts,
                s.learned,
                s.removed,
                s.solves,
                s.proof_clauses,
                s.proof_bytes,
                s.clause_db_bytes,
            ],
            dispatch: [
                summary.rounds,
                summary.quarantined,
                summary.proofs,
                summary.conflicts,
                summary.timeouts,
                summary.escalations,
                summary.panics,
            ],
        }
    }

    /// Restores the captured state by assignment. Only SAT-phase
    /// fields are touched; timings and simulation-phase fields keep
    /// their live values (they are stripped from deterministic
    /// reports, or reproduced exactly by the live replay).
    pub(crate) fn restore(&self, stats: &mut SweepStats, summary: &mut DispatchSummary) {
        stats.sat_calls = self.sat_calls;
        stats.proved_equivalent = self.proved_equivalent;
        stats.disproved = self.disproved;
        stats.aborted = self.aborted;
        stats.certification_failures = self.certification_failures;
        let [decisions, propagations, conflicts, restarts, learned, removed, solves, proof_clauses, proof_bytes, clause_db_bytes] =
            self.solver;
        stats.solver.decisions = decisions;
        stats.solver.propagations = propagations;
        stats.solver.conflicts = conflicts;
        stats.solver.restarts = restarts;
        stats.solver.learned = learned;
        stats.solver.removed = removed;
        stats.solver.solves = solves;
        stats.solver.proof_clauses = proof_clauses;
        stats.solver.proof_bytes = proof_bytes;
        stats.solver.clause_db_bytes = clause_db_bytes;
        let [rounds, quarantined, proofs, conflicts, timeouts, escalations, panics] = self.dispatch;
        summary.rounds = rounds;
        summary.quarantined = quarantined;
        summary.proofs = proofs;
        summary.conflicts = conflicts;
        summary.timeouts = timeouts;
        summary.escalations = escalations;
        summary.panics = panics;
    }

    fn to_json(&self) -> Json {
        let mut j = Json::obj();
        j.push("sat_calls", Json::U64(self.sat_calls));
        j.push("proved_equivalent", Json::U64(self.proved_equivalent));
        j.push("disproved", Json::U64(self.disproved));
        j.push("aborted", Json::U64(self.aborted));
        j.push(
            "certification_failures",
            Json::U64(self.certification_failures),
        );
        j.push(
            "solver",
            Json::Arr(self.solver.iter().map(|&v| Json::U64(v)).collect()),
        );
        j.push(
            "dispatch",
            Json::Arr(self.dispatch.iter().map(|&v| Json::U64(v)).collect()),
        );
        j
    }

    fn from_json(json: &Json) -> Option<StatsSnapshot> {
        let field = |name: &str| json.get(name).and_then(Json::as_u64);
        let array = |name: &str, out: &mut [u64]| -> Option<()> {
            let items = json.get(name)?.items()?;
            if items.len() != out.len() {
                return None;
            }
            for (slot, item) in out.iter_mut().zip(items) {
                *slot = item.as_u64()?;
            }
            Some(())
        };
        let mut snap = StatsSnapshot {
            sat_calls: field("sat_calls")?,
            proved_equivalent: field("proved_equivalent")?,
            disproved: field("disproved")?,
            aborted: field("aborted")?,
            certification_failures: field("certification_failures")?,
            ..StatsSnapshot::default()
        };
        array("solver", &mut snap.solver)?;
        array("dispatch", &mut snap.dispatch)?;
        Some(snap)
    }
}

/// Everything one round barrier committed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoundRecord {
    /// 1-based round number (matches `DispatchSummary::rounds`).
    pub round: u64,
    /// Resolved pairs, in the round's deterministic pair order.
    pub pairs: Vec<PairRecord>,
    /// Pairs dispatched to the worker pool (the rest were answered by
    /// the proof cache) — advances the global fault-plan job index.
    pub dispatched: u64,
    /// Signature of the surviving class partition after the round's
    /// counterexample flush.
    pub class_sig: String,
    /// Cumulative deterministic-counter snapshot (`name -> value`).
    pub counters: Vec<(String, u64)>,
    /// Cumulative SAT-phase statistics snapshot.
    pub stats: StatsSnapshot,
}

impl RoundRecord {
    fn to_json(&self) -> Json {
        let mut j = Json::obj();
        j.push("kind", Json::Str("round".to_string()));
        j.push("round", Json::U64(self.round));
        let pairs = self
            .pairs
            .iter()
            .map(|p| {
                let mut e = vec![
                    Json::U64(p.rep as u64),
                    Json::U64(p.cand as u64),
                    Json::Str(p.verdict.tag().to_string()),
                ];
                if let JournalVerdict::Counterexample(w) = &p.verdict {
                    e.push(Json::Str(bits_to_string(w)));
                }
                Json::Arr(e)
            })
            .collect();
        j.push("pairs", Json::Arr(pairs));
        j.push("dispatched", Json::U64(self.dispatched));
        j.push("classes", Json::Str(self.class_sig.clone()));
        let mut counters = Json::obj();
        for (name, value) in &self.counters {
            counters.push(name, Json::U64(*value));
        }
        j.push("counters", counters);
        j.push("stats", self.stats.to_json());
        j
    }

    fn from_json(json: &Json) -> Option<RoundRecord> {
        if json.get("kind").and_then(Json::as_str) != Some("round") {
            return None;
        }
        let mut pairs = Vec::new();
        for item in json.get("pairs")?.items()? {
            let fields = item.items()?;
            let rep = fields.first()?.as_u64()? as usize;
            let cand = fields.get(1)?.as_u64()? as usize;
            let verdict = match fields.get(2)?.as_str()? {
                "eq" => JournalVerdict::Equivalent,
                "cex" => {
                    JournalVerdict::Counterexample(bits_from_string(fields.get(3)?.as_str()?)?)
                }
                "undec" => JournalVerdict::Undecided,
                "panic" => JournalVerdict::Panicked,
                "skip" => JournalVerdict::Skipped,
                "certfail-replay" => JournalVerdict::CertificationFailed { replay: true },
                "certfail-check" => JournalVerdict::CertificationFailed { replay: false },
                _ => return None,
            };
            pairs.push(PairRecord { rep, cand, verdict });
        }
        let counters = json
            .get("counters")?
            .entries()?
            .iter()
            .map(|(name, value)| Some((name.clone(), value.as_u64()?)))
            .collect::<Option<Vec<_>>>()?;
        Some(RoundRecord {
            round: json.get("round")?.as_u64()?,
            pairs,
            dispatched: json.get("dispatched")?.as_u64()?,
            class_sig: json.get("classes")?.as_str()?.to_string(),
            counters,
            stats: StatsSnapshot::from_json(json.get("stats")?)?,
        })
    }
}

/// A write-ahead journal bound to one checkpoint directory.
///
/// Construct with [`SweepJournal::create`], then hand it to
/// [`crate::ParallelSweeper::run_checkpointed`] (or the checkpointed
/// CEC flow). With `resume` set, an existing valid journal whose
/// fingerprint matches the run is replayed; otherwise the file is
/// started fresh.
#[derive(Debug)]
pub struct SweepJournal {
    path: PathBuf,
    resume: bool,
    /// Committed lines, meta first — the whole file is rewritten
    /// atomically on each commit.
    lines: Vec<String>,
    /// Validated rounds available for replay (resume mode only).
    replay: Vec<RoundRecord>,
    begun: bool,
    broken: bool,
}

impl SweepJournal {
    /// Opens (creating if needed) the checkpoint directory. `resume`
    /// selects whether an existing journal is replayed or replaced.
    pub fn create(dir: impl Into<PathBuf>, resume: bool) -> io::Result<SweepJournal> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(SweepJournal {
            path: dir.join(JOURNAL_FILE),
            resume,
            lines: Vec::new(),
            replay: Vec::new(),
            begun: false,
            broken: false,
        })
    }

    /// True when this journal was opened in resume mode.
    pub fn resuming(&self) -> bool {
        self.resume
    }

    /// Binds the journal to a concrete run. In resume mode the
    /// existing file is loaded and validated line by line (checksum,
    /// schema, fingerprint, contiguous round numbers); everything up
    /// to the first invalid line — a torn tail from a crash mid-write
    /// cannot survive `atomic_write`, but a stale or foreign file can
    /// — is kept for replay and the rest discarded.
    pub(crate) fn begin(&mut self, fingerprint: &str) {
        if self.begun {
            return;
        }
        self.begun = true;
        if self.resume {
            if let Ok(text) = std::fs::read_to_string(&self.path) {
                self.load(&text, fingerprint);
            }
        }
        if self.lines.is_empty() {
            let mut meta = Json::obj();
            meta.push("kind", Json::Str("meta".to_string()));
            meta.push("schema", Json::Str(JOURNAL_SCHEMA.to_string()));
            meta.push("fingerprint", Json::Str(fingerprint.to_string()));
            self.lines.push(seal(meta));
            self.replay.clear();
            self.flush();
        }
    }

    fn load(&mut self, text: &str, fingerprint: &str) {
        let mut lines = text.lines();
        let Some(first) = lines.next() else { return };
        let Some(meta) = open_line(first) else { return };
        if meta.get("kind").and_then(Json::as_str) != Some("meta")
            || meta.get("schema").and_then(Json::as_str) != Some(JOURNAL_SCHEMA)
            || meta.get("fingerprint").and_then(Json::as_str) != Some(fingerprint)
        {
            return;
        }
        self.lines.push(first.to_string());
        for (next_round, line) in (1..).zip(lines) {
            let Some(record) = open_line(line).and_then(|j| RoundRecord::from_json(&j)) else {
                break;
            };
            if record.round != next_round {
                break;
            }
            self.lines.push(line.to_string());
            self.replay.push(record);
        }
    }

    /// The validated rounds available for replay.
    pub fn rounds(&self) -> &[RoundRecord] {
        &self.replay
    }

    /// Discards journaled rounds beyond the first `keep` — called when
    /// replay diverges from the journal (the later records describe a
    /// different run and must not survive on disk).
    pub(crate) fn truncate(&mut self, keep: usize) {
        if self.replay.len() > keep {
            self.replay.truncate(keep);
            self.lines.truncate(1 + keep);
            self.flush();
        }
    }

    /// Appends one round record and rewrites the journal atomically.
    /// This is the round barrier's durability point: after it returns,
    /// a crash loses nothing the round decided.
    pub(crate) fn commit_round(&mut self, record: &RoundRecord) {
        self.lines.push(seal(record.to_json()));
        self.flush();
        crash_hook(record.round);
    }

    fn flush(&mut self) {
        if self.broken {
            return;
        }
        let mut buffer = String::new();
        for line in &self.lines {
            buffer.push_str(line);
            buffer.push('\n');
        }
        if let Err(e) = atomic_write(&self.path, buffer) {
            // A full disk must not take the run down with it; the
            // sweep continues correct but uncheckpointed.
            eprintln!(
                "simgen: warning: sweep journal write failed ({e}); \
                 checkpointing disabled for the rest of this run"
            );
            self.broken = true;
        }
    }
}

/// Fingerprint binding a journal to a run: the structural hash of the
/// swept network (PO cones) plus every configuration field that can
/// change the deterministic report. Scheduling and anytime fields
/// (`jobs`, `stall`, `mem_budget`) are excluded — resuming under a
/// different worker count or memory budget is explicitly supported.
pub(crate) fn sweep_fingerprint(net: &LutNetwork, cfg: &SweepConfig) -> String {
    let roots: Vec<NodeId> = net.pos().iter().map(|po| po.node).collect();
    let mut h = Sha256::new();
    h.update(JOURNAL_SCHEMA.as_bytes());
    h.update(&[0]);
    h.update(&job_key(net, &roots).0);
    h.update(
        format!(
            "random_rounds={};random_batch={};guided_iterations={};sat_budget={:?};\
             run_sat={};proof={:?};seed={};budget_schedule={:?};certify={};\
             engine_mode={};incremental={};rebuild_bloat={}",
            cfg.random_rounds,
            cfg.random_batch,
            cfg.guided_iterations,
            cfg.sat_budget,
            cfg.run_sat,
            cfg.proof,
            cfg.seed,
            cfg.budget_schedule,
            cfg.certify,
            cfg.engine.mode.name(),
            cfg.engine.incremental,
            cfg.engine.rebuild_bloat,
        )
        .as_bytes(),
    );
    hex(&h.finalize())
}

/// Order-sensitive signature of a class partition — the replay
/// cross-check that the resumed run walked through the same states as
/// the journaled one.
pub(crate) fn class_signature(work: &[Vec<NodeId>]) -> String {
    let mut h = Sha256::new();
    for class in work {
        h.update(b"class\0");
        for &node in class {
            h.update(&(node.index() as u64).to_le_bytes());
        }
    }
    hex(&h.finalize())
}

/// Snapshot of every deterministic counter, in declaration order.
pub(crate) fn counter_snapshot(obs: &Observer) -> Vec<(String, u64)> {
    Counter::ALL
        .iter()
        .map(|&c| (c.name().to_string(), obs.recorder.get(c)))
        .collect()
}

/// Raises each counter to its journaled value. Replayed rounds bump
/// nothing themselves (and the live resimulation flushes bump exactly
/// what the original run's flushes did), so the positive difference
/// is precisely the skipped proof/cache activity.
pub(crate) fn restore_counters(obs: &mut Observer, counters: &[(String, u64)]) {
    for &counter in Counter::ALL {
        if let Some((_, value)) = counters.iter().find(|(name, _)| name == counter.name()) {
            let current = obs.recorder.get(counter);
            if *value > current {
                obs.recorder.add(counter, *value - current);
            }
        }
    }
}

/// Applies one replayed verdict's structural effects — the exact
/// mutations the live merge loop performs, minus every counter and
/// statistics bump (those are restored from the snapshot).
#[allow(clippy::too_many_arguments)]
pub(crate) fn apply_replayed_pair(
    record: PairRecord,
    generator: &mut dyn simgen_core::PatternGenerator,
    merged: &mut Vec<Vec<NodeId>>,
    seeds: &mut Vec<(NodeId, NodeId)>,
    unresolved: &mut Vec<(NodeId, NodeId)>,
    quarantined: &mut Vec<(NodeId, NodeId)>,
    pending: &mut Vec<Vec<bool>>,
    benched: &mut Vec<(NodeId, NodeId)>,
    dropped: &mut HashSet<NodeId>,
    interrupted: &mut bool,
) {
    let rep = NodeId::from_index(record.rep);
    let cand = NodeId::from_index(record.cand);
    match record.verdict {
        JournalVerdict::Equivalent => {
            crate::sweep::record_merge(merged, rep, cand);
            seeds.push((rep, cand));
        }
        JournalVerdict::Counterexample(witness) => {
            generator.observe_counterexample(&witness);
            pending.push(witness);
            benched.push((cand, rep));
        }
        JournalVerdict::Undecided => {
            unresolved.push((rep, cand));
        }
        JournalVerdict::Panicked => {
            quarantined.push((rep, cand));
            unresolved.push((rep, cand));
        }
        JournalVerdict::Skipped => {
            *interrupted = true;
            unresolved.push((rep, cand));
        }
        JournalVerdict::CertificationFailed { .. } => {
            unresolved.push((rep, cand));
            quarantined.push((rep, cand));
        }
    }
    dropped.insert(cand);
}

/// Serializes a record to its sealed line form: the payload JSON with
/// a `sum` field (SHA-256 over the payload serialization) appended.
fn seal(mut payload: Json) -> String {
    let body = payload.to_line();
    payload.push("sum", Json::Str(hex(&Sha256::digest(body.as_bytes()))));
    payload.to_line()
}

/// Parses and checksum-verifies one sealed line.
fn open_line(line: &str) -> Option<Json> {
    let json = Json::parse(line).ok()?;
    let entries = json.entries()?;
    let (last_key, last_value) = entries.last()?;
    if last_key != "sum" {
        return None;
    }
    let sum = last_value.as_str()?;
    let mut payload = Json::obj();
    for (key, value) in &entries[..entries.len() - 1] {
        payload.push(key, value.clone());
    }
    if hex(&Sha256::digest(payload.to_line().as_bytes())) != sum {
        return None;
    }
    Some(payload)
}

fn bits_to_string(bits: &[bool]) -> String {
    bits.iter().map(|&b| if b { '1' } else { '0' }).collect()
}

fn bits_from_string(text: &str) -> Option<Vec<bool>> {
    text.chars()
        .map(|c| match c {
            '0' => Some(false),
            '1' => Some(true),
            _ => None,
        })
        .collect()
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// See [`CRASH_ENV`]. SIGKILL leaves no chance for cleanup — exactly
/// the failure mode the journal exists to survive.
fn crash_hook(round: u64) {
    let Ok(value) = std::env::var(CRASH_ENV) else {
        return;
    };
    if value.parse::<u64>() != Ok(round) {
        return;
    }
    #[cfg(unix)]
    {
        extern "C" {
            fn kill(pid: i32, sig: i32) -> i32;
            fn getpid() -> i32;
        }
        const SIGKILL: i32 = 9;
        unsafe {
            kill(getpid(), SIGKILL);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record(round: u64) -> RoundRecord {
        RoundRecord {
            round,
            pairs: vec![
                PairRecord {
                    rep: 3,
                    cand: 9,
                    verdict: JournalVerdict::Equivalent,
                },
                PairRecord {
                    rep: 3,
                    cand: 11,
                    verdict: JournalVerdict::Counterexample(vec![true, false, true]),
                },
                PairRecord {
                    rep: 5,
                    cand: 12,
                    verdict: JournalVerdict::Undecided,
                },
                PairRecord {
                    rep: 5,
                    cand: 13,
                    verdict: JournalVerdict::CertificationFailed { replay: true },
                },
            ],
            dispatched: 3,
            class_sig: "abcd".to_string(),
            counters: vec![
                ("rounds".to_string(), round),
                ("proofs_dispatched".to_string(), 7),
            ],
            stats: StatsSnapshot {
                sat_calls: 5,
                proved_equivalent: 1,
                disproved: 1,
                aborted: 2,
                certification_failures: 1,
                solver: [1, 2, 3, 4, 5, 6, 7, 8, 9, 10],
                dispatch: [round, 1, 3, 0, 0, 2, 0],
            },
        }
    }

    #[test]
    fn round_records_roundtrip_through_sealed_lines() {
        let record = sample_record(1);
        let line = seal(record.to_json());
        let payload = open_line(&line).expect("sealed line verifies");
        assert_eq!(RoundRecord::from_json(&payload), Some(record));
    }

    #[test]
    fn tampered_lines_are_rejected() {
        let line = seal(sample_record(1).to_json());
        assert!(open_line(&line).is_some());
        let tampered = line.replace("\"dispatched\":3", "\"dispatched\":4");
        assert!(open_line(&tampered).is_none(), "checksum must catch edits");
        assert!(open_line("not json").is_none());
        assert!(open_line("{}").is_none(), "missing sum");
    }

    #[test]
    fn journal_survives_crash_and_discards_torn_tail() {
        let dir = std::env::temp_dir().join(format!("simgen_journal_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let fp = "f00d";
        {
            let mut journal = SweepJournal::create(&dir, false).unwrap();
            journal.begin(fp);
            journal.commit_round(&sample_record(1));
            journal.commit_round(&sample_record(2));
        }
        // A crash can only leave whole lines behind (atomic_write),
        // but a hand-damaged or foreign file must degrade gracefully:
        // corrupt the second round's line.
        let path = dir.join(JOURNAL_FILE);
        let text = std::fs::read_to_string(&path).unwrap();
        let damaged: Vec<&str> = text.lines().collect();
        let mut tampered = damaged[..2].join("\n");
        tampered.push('\n');
        tampered.push_str(&damaged[2].replace("round\":2", "round\":7"));
        tampered.push('\n');
        std::fs::write(&path, tampered).unwrap();

        let mut journal = SweepJournal::create(&dir, true).unwrap();
        journal.begin(fp);
        assert_eq!(journal.rounds().len(), 1, "valid prefix only");
        assert_eq!(journal.rounds()[0], sample_record(1));

        // A fingerprint mismatch discards everything.
        let mut journal = SweepJournal::create(&dir, true).unwrap();
        journal.begin("other");
        assert!(journal.rounds().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn non_resume_mode_replaces_an_existing_journal() {
        let dir = std::env::temp_dir().join(format!("simgen_journal_nr_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut journal = SweepJournal::create(&dir, false).unwrap();
            journal.begin("fp");
            journal.commit_round(&sample_record(1));
        }
        let mut journal = SweepJournal::create(&dir, false).unwrap();
        journal.begin("fp");
        assert!(journal.rounds().is_empty(), "fresh start without --resume");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_restore_is_assignment() {
        let mut stats = SweepStats::default();
        let mut summary = DispatchSummary::default();
        let snap = sample_record(4).stats;
        snap.restore(&mut stats, &mut summary);
        assert_eq!(StatsSnapshot::capture(&stats, &summary), snap);
    }
}
